"""Job specs: what one service request asks the machine to compute.

A :class:`JobSpec` is the validated, canonicalised form of one request
body.  Canonicalisation matters twice: it is how the batching layer
coalesces identical concurrent requests into one execution, and it is
what makes a job's identity stable for logs and tests.

Three kinds are served (the same shapes `ksr-experiments`/`ksr-faults`
expose, so a service response can be diffed against CLI output
byte-for-byte):

* ``experiment`` — one figure sweep (fig2/fig3/fig4/fig5); every sweep
  point fans out through the scheduler's shared runner.
* ``campaign`` — a fault campaign (processors x corruption rates) via
  :mod:`repro.faults.campaign`.
* ``point`` — a single degraded lock measurement, the smallest
  request the API accepts.

Each kind knows how to run itself against a provided
:class:`~repro.experiments.sweep.SweepRunner`; everything else (queueing,
batching, caching, capture summaries) is the scheduler's business.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.experiments.base import ExperimentResult
from repro.experiments.sweep import SweepRunner
from repro.obs import ObsSpec

__all__ = ["JobSpec", "ServiceError", "SERVED_EXPERIMENTS", "describe_catalog"]


class ServiceError(ValueError):
    """A client error with the HTTP status it should surface as."""

    def __init__(self, message: str, *, status: int = 400):
        super().__init__(message)
        self.status = status


def _run_fig2(params: dict[str, Any], runner: SweepRunner, obs: ObsSpec | None):
    from repro.experiments.latency import run_figure2

    return run_figure2(
        proc_counts=params["procs"], samples=params["samples"],
        seed=params["seed"], runner=runner, obs=obs,
    )


def _run_fig3(params: dict[str, Any], runner: SweepRunner, obs: ObsSpec | None):
    from repro.experiments.locks import run_figure3

    return run_figure3(
        proc_counts=params["procs"], ops=params["ops"],
        seed=params["seed"], runner=runner, obs=obs,
    )


def _run_fig4(params: dict[str, Any], runner: SweepRunner, obs: ObsSpec | None):
    from repro.experiments.barriers import run_figure4

    return run_figure4(
        proc_counts=params["procs"], reps=params["reps"],
        seed=params["seed"], runner=runner, obs=obs,
    )


def _run_fig5(params: dict[str, Any], runner: SweepRunner, obs: ObsSpec | None):
    from repro.experiments.barriers import run_figure5

    return run_figure5(
        proc_counts=params["procs"], reps=params["reps"],
        seed=params["seed"], runner=runner, obs=obs,
    )


#: Experiment id -> (title, defaults, runner adapter).  Defaults mirror
#: the CLIs' ``--quick`` sizes: a service exists to answer many small
#: requests, and a client wanting paper-size sweeps says so explicitly.
SERVED_EXPERIMENTS: dict[str, tuple[str, dict[str, Any], Callable]] = {
    "fig2": (
        "Figure 2: memory-hierarchy latencies",
        {"procs": [1, 2, 8, 32], "samples": 400, "seed": 101},
        _run_fig2,
    ),
    "fig3": (
        "Figure 3: lock performance",
        {"procs": [2, 8, 32], "ops": 30, "seed": 303},
        _run_fig3,
    ),
    "fig4": (
        "Figure 4: barriers on the 32-node KSR-1",
        {"procs": [4, 16, 32], "reps": 6, "seed": 404},
        _run_fig4,
    ),
    "fig5": (
        "Figure 5: barriers on the 64-node KSR-2",
        {"procs": [16, 32, 48, 64], "reps": 6, "seed": 404},
        _run_fig5,
    ),
}

_CAMPAIGN_DEFAULTS: dict[str, Any] = {
    "procs": [8, 16], "rates": [0.0, 1e-4], "ops": 10, "seed": 303,
}

_POINT_DEFAULTS: dict[str, Any] = {
    "lock": "rw", "n_procs": 8, "read_fraction": 0.0, "ops": 10,
    "seed": 303, "fault_rate": 0.0,
}


def describe_catalog() -> dict[str, Any]:
    """What ``GET /v1/experiments`` reports: kinds, ids, defaults."""
    return {
        "experiments": {
            key: {"title": title, "defaults": defaults}
            for key, (title, defaults, _) in SERVED_EXPERIMENTS.items()
        },
        "campaign": {"defaults": _CAMPAIGN_DEFAULTS},
        "point": {"defaults": _POINT_DEFAULTS},
    }


def _merge_params(
    body: dict[str, Any], defaults: dict[str, Any], *, kind: str
) -> dict[str, Any]:
    """Defaults overlaid with the request's params; unknown keys are 400s."""
    given = body.get("params", {})
    if not isinstance(given, dict):
        raise ServiceError(f"{kind}: 'params' must be an object")
    unknown = sorted(set(given) - set(defaults))
    if unknown:
        raise ServiceError(
            f"{kind}: unknown param(s) {', '.join(unknown)} "
            f"(accepted: {', '.join(sorted(defaults))})"
        )
    return {**defaults, **given}


@dataclass(frozen=True)
class JobSpec:
    """One validated request: kind + full parameter set + obs flag."""

    kind: str
    #: Sorted ``(name, value)`` pairs — hashable, canonically ordered.
    params: tuple[tuple[str, Any], ...]
    with_obs: bool = False

    @classmethod
    def from_request(cls, body: dict[str, Any]) -> "JobSpec":
        """Parse + validate one POST /v1/jobs body."""
        if not isinstance(body, dict):
            raise ServiceError("request body must be a JSON object")
        kind = body.get("kind")
        with_obs = bool(body.get("obs", False))
        if kind == "experiment":
            exp = body.get("experiment")
            if exp not in SERVED_EXPERIMENTS:
                raise ServiceError(
                    f"unknown experiment {exp!r} "
                    f"(served: {', '.join(SERVED_EXPERIMENTS)})"
                )
            _, defaults, _ = SERVED_EXPERIMENTS[exp]
            params = _merge_params(body, defaults, kind=f"experiment {exp}")
            params["experiment"] = exp
        elif kind == "campaign":
            params = _merge_params(body, _CAMPAIGN_DEFAULTS, kind="campaign")
        elif kind == "point":
            params = _merge_params(body, _POINT_DEFAULTS, kind="point")
            if params["lock"] not in ("rw", "hardware"):
                raise ServiceError(f"point: unknown lock kind {params['lock']!r}")
        else:
            raise ServiceError(
                f"unknown job kind {kind!r} (served: experiment, campaign, point)"
            )
        frozen = tuple(
            (k, tuple(v) if isinstance(v, list) else v)
            for k, v in sorted(params.items())
        )
        return cls(kind=kind, params=frozen, with_obs=with_obs)

    def param_dict(self) -> dict[str, Any]:
        """Parameters as a plain dict (lists restored for runners)."""
        return {
            k: list(v) if isinstance(v, tuple) else v for k, v in self.params
        }

    def canonical(self) -> str:
        """Stable identity used for coalescing identical requests."""
        return repr((self.kind, self.params, self.with_obs))

    # -- execution ----------------------------------------------------

    def execute(self, runner: SweepRunner) -> dict[str, Any]:
        """Run this job on ``runner``; return the JSON-safe payload."""
        obs = ObsSpec() if self.with_obs else None
        params = self.param_dict()
        if self.kind == "experiment":
            exp = params.pop("experiment")
            _, _, adapter = SERVED_EXPERIMENTS[exp]
            result: ExperimentResult = adapter(params, runner, obs)
            return {
                "experiment": exp,
                "experiment_id": result.experiment_id,
                "title": result.title,
                "headers": result.headers,
                "rows": result.rows,
                "notes": result.notes,
                "series": {name: pts for name, pts in result.series.items()},
                "rendered": result.render(),
            }
        if self.kind == "campaign":
            from repro.faults.campaign import run_campaign

            campaign = run_campaign(
                proc_counts=params["procs"], fault_rates=params["rates"],
                ops=params["ops"], seed=params["seed"], runner=runner, obs=obs,
            )
            return {
                "experiment_id": campaign.result.experiment_id,
                "title": campaign.result.title,
                "headers": campaign.result.headers,
                "rows": campaign.result.rows,
                "notes": campaign.result.notes,
                "points": [
                    {"n_procs": p, "fault_rate": r, **stats}
                    for (p, r), stats in sorted(campaign.points.items())
                ],
                "rendered": campaign.render(),
            }
        # point
        from repro.experiments.degraded import degraded_lock_point
        from repro.faults.plan import FaultPlan

        call = dict(
            kind=params["lock"], n_procs=params["n_procs"],
            read_fraction=params["read_fraction"], ops=params["ops"],
            seed=params["seed"],
            plan=FaultPlan(corruption_rate=params["fault_rate"]),
        )
        if obs is not None:
            call["obs"] = obs
        point = runner.map(degraded_lock_point, [call])[0]
        return {
            "seconds": point.seconds,
            "faults": {name: value for name, value in point.faults},
        }
