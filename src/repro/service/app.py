"""The HTTP/JSON surface of ``ksr-serve``.

Stdlib-only (``http.server``): the serving layer must run in the bare
container the simulator runs in.  A :class:`ServiceApp` owns the
scheduler + sharded cache; :func:`make_server` binds it to a
``ThreadingHTTPServer`` so every request handler thread can block on a
job without stalling the listener.

Endpoints::

    GET  /healthz            liveness + uptime
    GET  /v1/stats           cache + scheduler counters
    GET  /v1/experiments     served job kinds and their defaults
    POST /v1/jobs            submit {"kind": ..., "params": {...}}
                             (+"wait": true to block for the result,
                              +"obs": true for capture summaries)
    GET  /v1/jobs/<id>       job status / result

Overload surfaces as ``429`` with a ``Retry-After`` header (seconds);
oversized jobs as ``413``; malformed requests as ``400`` — all with a
JSON body carrying ``error``.  Every job response embeds the cache
hit/miss/corrupt deltas for that execution, which is what the CI smoke
check asserts its ≥95%-hits-on-resubmit property against.
"""

from __future__ import annotations

import json
import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.service.backends import make_backend
from repro.service.cache2 import ShardedResultCache
from repro.service.jobs import JobSpec, ServiceError, describe_catalog
from repro.service.scheduler import RejectedError, Scheduler

__all__ = ["ServiceApp", "make_server", "version_info", "drain_retry_after",
           "DEFAULT_DRAIN_DEADLINE"]

#: Longest a ``"wait": true`` submission may block the handler thread.
MAX_WAIT_SECONDS = 600.0

#: Drain budget assumed when shutdown starts without an explicit one
#: (matches the ``--drain-deadline`` CLI default).
DEFAULT_DRAIN_DEADLINE = 30.0


def drain_retry_after(drain_ends_at: float | None) -> int:
    """Whole seconds until a drain deadline passes (floor 1).

    The ``Retry-After`` a draining server sends with its 503s: derived
    from the actual drain budget remaining — the moment a restarted
    process could plausibly answer — not a hardcoded constant, the same
    way the 429 path derives its hint from observed service times.
    """
    if drain_ends_at is None:
        return 1
    return max(1, math.ceil(drain_ends_at - time.monotonic()))

_version_info: dict[str, str] | None = None


def version_info() -> dict[str, str]:
    """What code this server runs: the cache-keying identity.

    ``code`` is :func:`repro.experiments.sweep.code_version` — the hash
    every cache key embeds — and ``model`` is the scenario-model
    semantic version folded into it.  A fleet coordinator refuses to
    route to a worker whose version differs: its shard could never
    serve this coordinator's keys, only recompute them under a key the
    coordinator would not find again.
    """
    global _version_info
    if _version_info is None:
        from repro.analysis.scenarios.model import MODEL_VERSION
        from repro.experiments.sweep import code_version

        _version_info = {"code": code_version(), "model": MODEL_VERSION}
    return _version_info


class ServiceApp:
    """Scheduler + cache + catalog behind one handler-friendly facade."""

    def __init__(
        self,
        cache_dir: str,
        *,
        backend: str = "process:2",
        cap_bytes: int | None = None,
        workers: int = 2,
        queue_cap: int = 8,
        max_points: int = 512,
        max_batch: int = 64,
    ):
        self.cache = ShardedResultCache(cache_dir, cap_bytes=cap_bytes)
        self.scheduler = Scheduler(
            make_backend(backend),
            self.cache,
            workers=workers,
            queue_cap=queue_cap,
            max_points=max_points,
            max_batch=max_batch,
        )
        self.started_at = time.time()
        self._closing = threading.Event()
        self._drain_ends_at: float | None = None

    @property
    def closing(self) -> bool:
        """Whether the app has begun its shutdown sequence (503s)."""
        return self._closing.is_set()

    def begin_shutdown(self, drain_deadline: float = DEFAULT_DRAIN_DEADLINE) -> None:
        """Stop admitting: every later submission is answered 503.

        The first call pins the drain deadline; 503 ``Retry-After``
        hints count down against it.
        """
        if not self._closing.is_set():
            self._drain_ends_at = time.monotonic() + max(0.0, drain_deadline)
        self._closing.set()

    def drain_retry_after(self) -> int:
        """Seconds a 503'd client should wait before resubmitting."""
        return drain_retry_after(self._drain_ends_at)

    def close(self, *, drain_deadline: float = 30.0) -> int:
        """Graceful shutdown: stop admitting, drain, flush, release.

        Admission is cut first (503), accepted jobs get up to
        ``drain_deadline`` seconds to settle, the cache's manifest
        journal is compacted to one line per live entry, and the
        backend is released.  Returns the number of jobs stranded by
        the deadline (0 on a clean exit).
        """
        self.begin_shutdown(drain_deadline)
        stranded = self.scheduler.close(deadline=drain_deadline)
        try:
            self.cache.compact_manifest()
        except OSError:  # pragma: no cover - advisory index only
            pass
        return stranded

    # -- request handling (pure: dict in, (status, doc, headers) out) --

    def handle_get(self, path: str) -> tuple[int, dict[str, Any]]:
        """Route a GET ``path`` to ``(status, json_doc)``."""
        if path == "/healthz":
            return 200, {
                "status": "draining" if self.closing else "ok",
                "uptime_s": round(time.time() - self.started_at, 3),
                "cache": self.cache.stats(),
                "version": version_info(),
            }
        if path == "/v1/stats":
            return 200, {
                "cache": self.cache.stats(),
                "scheduler": self.scheduler.stats(),
                "version": version_info(),
            }
        if path == "/v1/experiments":
            return 200, describe_catalog()
        if path.startswith("/v1/jobs/"):
            job = self.scheduler.get(path.removeprefix("/v1/jobs/"))
            if job is None:
                return 404, {"error": "no such job"}
            return 200, job.describe()
        return 404, {"error": f"no such endpoint {path!r}"}

    def handle_submit(
        self, body: dict[str, Any]
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        """Admit one POSTed job ``body``; ``(status, doc, extra_headers)``.

        202 queued, 200 done (``wait: true``), 4xx on bad/oversized/
        rejected submissions — 429 carries a ``Retry-After`` header.
        A draining server answers 503: the client should resubmit to a
        live replica (or wait out the restart), not queue behind a
        deadline-bounded drain.
        """
        if self.closing:
            return (
                503,
                {"error": "server is draining; resubmit elsewhere"},
                {"Retry-After": str(self.drain_retry_after())},
            )
        try:
            spec = JobSpec.from_request(body)
            job = self.scheduler.submit(spec)
        except RejectedError as exc:
            return (
                exc.status,
                {"error": str(exc), "retry_after": exc.retry_after},
                {"Retry-After": str(int(exc.retry_after + 0.5) or 1)},
            )
        except ServiceError as exc:
            return exc.status, {"error": str(exc)}, {}
        if body.get("wait"):
            timeout = min(float(body.get("timeout", MAX_WAIT_SECONDS)), MAX_WAIT_SECONDS)
            if not job.wait(timeout):
                return 202, job.describe(), {}
            return 200, job.describe(), {}
        return 202, job.describe(), {}


class _Handler(BaseHTTPRequestHandler):
    """Thin JSON adapter over :class:`ServiceApp` (one per request)."""

    app: ServiceApp  # set by make_server on the subclass
    verbose = False
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if self.verbose:  # pragma: no cover - log formatting only
            super().log_message(format, *args)

    def _reply(
        self, status: int, doc: dict[str, Any], headers: dict[str, str] | None = None
    ) -> None:
        payload = json.dumps(doc, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        status, doc = self.app.handle_get(self.path)
        self._reply(status, doc)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path != "/v1/jobs":
            self._reply(404, {"error": f"no such endpoint {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            body = json.loads(self.rfile.read(length) or b"null")
        except (ValueError, json.JSONDecodeError):
            self._reply(400, {"error": "request body must be valid JSON"})
            return
        if not isinstance(body, dict):
            self._reply(400, {"error": "request body must be a JSON object"})
            return
        status, doc, headers = self.app.handle_submit(body)
        self._reply(status, doc, headers)


class _ServiceHTTPServer(ThreadingHTTPServer):
    # The stdlib default listen backlog (5) resets connections the
    # moment hundreds of closed-loop clients connect at once; size it
    # for the --loadgen concurrency instead.
    request_queue_size = 1024


def make_server(
    app: ServiceApp, host: str = "127.0.0.1", port: int = 0, *, verbose: bool = False
) -> ThreadingHTTPServer:
    """Bind ``app`` to a threading HTTP server (``port=0``: ephemeral)."""
    handler = type("KsrServeHandler", (_Handler,), {"app": app, "verbose": verbose})
    return _ServiceHTTPServer((host, port), handler)
