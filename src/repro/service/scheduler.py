"""Admission control and job execution for the serving layer.

The scheduler is the seam between the HTTP surface and the compute
substrate.  Its contract:

* **Bounded queueing** — at most ``queue_cap`` jobs wait; a submission
  past that is *rejected immediately* with a retry-after hint derived
  from recent service times, never silently buffered.  Overload shows
  up at the client as back-pressure, not at the server as unbounded
  memory.
* **Admission pricing** — a job estimated above ``max_points`` sweep
  points is refused outright (HTTP 413 at the API layer): the client
  must split it, mirroring how the batch layer slices accepted work.
* **Coalescing** — identical concurrent specs share one execution via
  :class:`~repro.service.batching.JobTable`.
* **Pinned execution** — while a job runs, every cache key it touches
  is pinned (:meth:`ShardedResultCache.pin_session`), so LRU eviction
  triggered by concurrent stores can never remove an in-flight
  campaign's own points.
* **Deterministic payloads** — each job runs on a fresh
  :class:`~repro.service.backends.BackendSweepRunner` over the shared
  backend + cache, so responses are byte-identical to the CLI's output
  for the same parameters, whatever the concurrency.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.obs.summary import capture_summary
from repro.service.backends import Backend, BackendSweepRunner
from repro.service.batching import JobTable, estimate_points
from repro.service.cache2 import ShardedResultCache
from repro.service.jobs import JobSpec, ServiceError

__all__ = ["Job", "RejectedError", "Scheduler"]

# Determinism sinks for `ksr-analyze flow` (KSR110): job specs decide
# sweep cache keys downstream, so submissions must be deterministic
# even though the scheduler itself keeps wall-clock bookkeeping.
__ksr_flow_sinks__ = ("Scheduler.submit",)


class RejectedError(ServiceError):
    """Queue full: reject-with-retry-after instead of unbounded growth."""

    def __init__(self, message: str, *, retry_after: float):
        super().__init__(message, status=429)
        self.retry_after = retry_after


@dataclass
class Job:
    """One accepted submission and (eventually) its result."""

    job_id: str
    spec: JobSpec
    #: Tenant the submission was attributed to (fleet quota/fair-share
    #: accounting; single-daemon jobs all ride the default tenant).
    tenant: str = "default"
    status: str = "queued"  # queued | running | done | failed
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    payload: dict[str, Any] | None = None
    error: str | None = None
    cache: dict[str, Any] = field(default_factory=dict)
    obs: list[dict[str, Any]] = field(default_factory=list)
    _done: threading.Event = field(default_factory=threading.Event, repr=False)

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job settles; True if it did within timeout."""
        return self._done.wait(timeout)

    def describe(self) -> dict[str, Any]:
        """JSON-safe snapshot for ``GET /v1/jobs/<id>`` and waits."""
        doc: dict[str, Any] = {
            "job_id": self.job_id,
            "kind": self.spec.kind,
            "status": self.status,
        }
        if self.tenant != "default":
            doc["tenant"] = self.tenant
        if self.started_at is not None and self.finished_at is not None:
            doc["seconds"] = self.finished_at - self.started_at
        if self.payload is not None:
            doc["result"] = self.payload
        if self.error is not None:
            doc["error"] = self.error
        if self.cache:
            doc["cache"] = self.cache
        if self.obs:
            doc["obs"] = self.obs
        return doc


class Scheduler:
    """Bounded-queue, multi-worker job executor over one shared cache."""

    def __init__(
        self,
        backend: Backend,
        cache: ShardedResultCache,
        *,
        workers: int = 2,
        queue_cap: int = 8,
        max_points: int = 512,
        max_batch: int = 64,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if queue_cap < 1:
            raise ValueError(f"queue_cap must be >= 1, got {queue_cap}")
        self.backend = backend
        self.cache = cache
        self.max_points = max_points
        self.max_batch = max_batch
        self._queue: queue.Queue[Job | None] = queue.Queue()
        self._queued = 0  # jobs accepted but not yet finished running
        self._lock = threading.Lock()
        self.queue_cap = queue_cap
        self._jobs: dict[str, Job] = {}
        self._table = JobTable()
        self._ids = itertools.count(1)
        self._recent_seconds: list[float] = []
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.rejected = 0
        #: Jobs still unfinished when a bounded-deadline close gave up.
        self.stranded = 0
        self._closing = False
        self._workers = [
            threading.Thread(target=self._worker, name=f"ksr-serve-{i}", daemon=True)
            for i in range(workers)
        ]
        for thread in self._workers:
            thread.start()

    # -- submission ---------------------------------------------------

    def _retry_after_locked(self) -> float:
        """Back-off hint: queued work / workers, priced at recent speed.

        Caller must hold ``self._lock``.
        """
        recent = self._recent_seconds
        per_job = (sum(recent) / len(recent)) if recent else 1.0
        return max(1.0, round(self._queued * per_job / len(self._workers), 1))

    def retry_after(self) -> float:
        """Public (locking) form of the back-off hint."""
        with self._lock:
            return self._retry_after_locked()

    def submit(self, spec: JobSpec) -> Job:
        """Admit, coalesce or reject one spec; returns its job."""
        points = estimate_points(spec)
        if points > self.max_points:
            raise ServiceError(
                f"job would fan out {points} sweep points, over this "
                f"server's per-job bound of {self.max_points}; split the "
                f"request",
                status=413,
            )
        with self._lock:
            self.submitted += 1
            job = Job(
                job_id=f"job-{next(self._ids)}",
                spec=spec,
                submitted_at=time.time(),
            )
            existing = self._table.claim(spec.canonical(), job)
            if existing is not None:
                return existing  # identical request already in flight
            if self._queued >= self.queue_cap:
                self.rejected += 1
                self._table.release(spec.canonical())
                raise RejectedError(
                    f"queue full ({self.queue_cap} jobs); retry later",
                    retry_after=self._retry_after_locked(),
                )
            self._queued += 1
            self._jobs[job.job_id] = job
        self._queue.put(job)
        return job

    def get(self, job_id: str) -> Job | None:
        """Look up an accepted job by id (None if unknown)."""
        with self._lock:
            return self._jobs.get(job_id)

    # -- execution ----------------------------------------------------

    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        job.status = "running"
        job.started_at = time.time()
        runner = BackendSweepRunner(
            self.backend, cache=self.cache, max_batch=self.max_batch
        )
        before = self.cache.stats()
        try:
            with self.cache.pin_session():
                payload = job.spec.execute(runner)
        except ServiceError as exc:
            job.status = "failed"
            job.error = str(exc)
        except Exception as exc:  # noqa: BLE001 - a job must never kill a worker
            job.status = "failed"
            job.error = f"{type(exc).__name__}: {exc}"
        else:
            after = self.cache.stats()
            job.payload = payload
            job.cache = {
                "hits": after["hits"] - before["hits"],
                "misses": after["misses"] - before["misses"],
                "corrupt": after["corrupt"] - before["corrupt"],
                "root": after["root"],
            }
            job.obs = [capture_summary(c) for c in runner.captures]
            job.status = "done"
        finally:
            job.finished_at = time.time()
            with self._lock:
                self._queued -= 1
                if job.status == "done":
                    self.completed += 1
                else:
                    self.failed += 1
                self._recent_seconds.append(job.finished_at - job.started_at)
                del self._recent_seconds[:-20]  # rolling window
            self._table.release(job.spec.canonical())
            job._done.set()

    # -- lifecycle / stats --------------------------------------------

    def stats(self) -> dict[str, Any]:
        """JSON-safe counters for ``/v1/stats`` and `ksr-serve` logs."""
        with self._lock:
            return {
                "workers": len(self._workers),
                "queue_cap": self.queue_cap,
                "queued": self._queued,
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "rejected": self.rejected,
                "stranded": self.stranded,
                "coalesced": self._table.coalesced,
                "max_points": self.max_points,
                "max_batch": self.max_batch,
                "backend": self.backend.name,
            }

    def drain(self, deadline: float = 30.0) -> int:
        """Wait up to ``deadline`` seconds for accepted jobs to settle.

        Returns the number of jobs still unfinished when the deadline
        expired (0 on a clean drain).  The caller is responsible for
        having stopped admission first — this only *waits*, it cannot
        hold back new submissions.
        """
        end = time.monotonic() + max(0.0, deadline)
        while time.monotonic() < end:
            with self._lock:
                if self._queued == 0:
                    return 0
            time.sleep(0.02)
        with self._lock:
            return self._queued

    def close(self, deadline: float = 30.0) -> int:
        """Stop workers within ``deadline`` seconds; release the backend.

        The drain is *bounded*: sentinels queue behind already-accepted
        work, each worker thread gets a slice of the remaining budget,
        and whatever is still running when the budget is spent is
        counted in :attr:`stranded` (and returned) instead of being
        waited on forever.  Idempotent.
        """
        with self._lock:
            already_closing = self._closing
            self._closing = True
        if not already_closing:
            for _ in self._workers:
                self._queue.put(None)
        end = time.monotonic() + max(0.0, deadline)
        for thread in self._workers:
            thread.join(timeout=max(0.0, end - time.monotonic()))
        with self._lock:
            stranded = self._queued
            self.stranded = stranded
        if stranded == 0:
            self.backend.close()
        # else: a process-pool close() would block on the stranded
        # job's futures, re-introducing the unbounded wait this
        # deadline exists to prevent; the pool dies with the process.
        return stranded
