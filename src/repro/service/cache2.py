"""Sharded result cache (v2) for the serving layer.

:class:`ShardedResultCache` keeps the contract of
:class:`repro.experiments.sweep.ResultCache` — ``load``/``store`` by
point key, atomic pickle-per-entry files — and adds what a long-lived
server needs that a one-shot CLI run does not:

* **Two-level fan-out** — entries live at ``objects/ab/cd/<key>.pkl``
  (first two byte-pairs of the SHA-256 key), so a cache holding
  hundreds of thousands of points never produces a directory large
  enough to make ``readdir`` a hot spot.
* **Manifest index** — an append-only ``manifest.jsonl`` journal of
  stores and evictions.  The object tree stays the source of truth
  (the journal is advisory and rebuilt on compaction), but the
  manifest answers "what is in this cache, from which function, how
  big" without walking every shard.
* **Size cap with LRU eviction** — ``cap_bytes`` bounds the resident
  set; eviction drops least-recently-*used* entries (access bumps the
  entry's mtime) until the cap holds again.
* **Pinning** — a :meth:`pin_session` marks every key a running job
  touches; eviction never removes pinned entries, so a campaign in
  flight cannot have points evicted between its own batches.
* **Safe concurrency** — all writes are tempfile + ``os.replace``;
  counters, pins and eviction are guarded by one lock so multiple
  server workers can share a single instance.

Like ``sweep.py``, this module is harness-side code: wall-clock mtimes
and filesystem state never touch simulated time.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Iterator

__all__ = ["ShardedResultCache", "CACHE_FORMAT_VERSION"]

#: Bumped when the on-disk layout changes; a mismatched cache directory
#: is refused rather than silently misread.
CACHE_FORMAT_VERSION = 2


class ShardedResultCache:
    """Two-level sharded, size-capped, pinnable point cache.

    Duck-type compatible with :class:`~repro.experiments.sweep.ResultCache`
    (``load``/``store``/``hits``/``misses``/``corrupt``/``stats``), so a
    :class:`~repro.experiments.sweep.SweepRunner` accepts it unchanged.

    Parameters
    ----------
    root:
        Cache directory (resolved to an absolute path at construction,
        like cache v1 after the PR-5 fix).
    cap_bytes:
        Resident-set bound; ``None`` means uncapped.  Enforced after
        every store, skipping pinned entries.
    """

    def __init__(self, root: str | os.PathLike[str], *, cap_bytes: int | None = None):
        if cap_bytes is not None and cap_bytes <= 0:
            raise ValueError(f"cap_bytes must be positive or None, got {cap_bytes}")
        self.root = Path(root).resolve()
        self.cap_bytes = cap_bytes
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.evictions = 0
        #: Misses served by :attr:`remote_fetch` (fleet read-through).
        self.remote_hits = 0
        #: Remote read-through seam.  When set (the fleet worker wires
        #: it to its replica peers), a local miss consults this callable
        #: — ``key -> (hit, value)`` — before being counted as a miss;
        #: a remote hit is adopted into the local shard so the key is
        #: served locally from then on.  ``None`` (the default) keeps
        #: single-daemon behaviour bit-identical.
        self.remote_fetch: Callable[[str], tuple[bool, Any]] | None = None
        self._lock = threading.Lock()
        #: Active pin sessions: owning thread id -> stack of key sets.
        #: Attribution is thread-local: the scheduler runs one job per
        #: worker thread, and every cache op of that job (hit checks
        #: and stores alike) happens on that thread, so keys pin to the
        #: job that actually touched them — not to every job in flight.
        self._pins: dict[int, list[set[str]]] = {}
        self._init_layout()

    # -- layout -------------------------------------------------------

    def _init_layout(self) -> None:
        objects = self.root / "objects"
        objects.mkdir(parents=True, exist_ok=True)
        marker = self.root / "CACHE_FORMAT"
        if marker.exists():
            found = marker.read_text().strip()
            if found != str(CACHE_FORMAT_VERSION):
                raise ValueError(
                    f"{self.root} holds cache format {found!r}, "
                    f"this build expects {CACHE_FORMAT_VERSION}"
                )
        else:
            marker.write_text(f"{CACHE_FORMAT_VERSION}\n")

    def _path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / key[2:4] / f"{key}.pkl"

    @property
    def _manifest_path(self) -> Path:
        return self.root / "manifest.jsonl"

    def _journal(self, record: dict[str, Any]) -> None:
        """Append one manifest line (O_APPEND: line-atomic for our sizes)."""
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        try:
            with open(self._manifest_path, "a", encoding="utf-8") as fh:
                fh.write(line)
        except OSError:  # pragma: no cover - advisory index only
            pass

    # -- pinning ------------------------------------------------------

    @contextmanager
    def pin_session(self) -> Iterator[set[str]]:
        """Pin every key this thread touches until exit.

        Yields the live key set.  ``load`` and ``store`` attribute each
        key to the calling thread's open session(s), and eviction skips
        the union of all sessions' keys — so an in-flight job's entries
        cannot be evicted out from under it by concurrent stores, while
        entries belonging to *other* (finished or unrelated) jobs stay
        ordinary LRU citizens.
        """
        ident = threading.get_ident()
        keys: set[str] = set()
        with self._lock:
            self._pins.setdefault(ident, []).append(keys)
        try:
            yield keys
        finally:
            with self._lock:
                stack = self._pins[ident]
                stack.remove(keys)
                if not stack:
                    del self._pins[ident]

    def _note_touch(self, key: str) -> None:
        ident = threading.get_ident()
        with self._lock:
            for keys in self._pins.get(ident, ()):
                keys.add(key)

    def _pinned_keys(self) -> set[str]:
        with self._lock:
            out: set[str] = set()
            for stack in self._pins.values():
                for keys in stack:
                    out |= keys
            return out

    # -- load/store (SweepRunner contract) ----------------------------

    def load(self, key: str) -> tuple[bool, Any]:
        """Return ``(hit, value)``; corrupt entries are counted+dropped.

        A local miss consults :attr:`remote_fetch` (when wired): a
        remote hit is stored locally, counted in :attr:`remote_hits`
        *and* :attr:`hits` (the point was cache-served, just not by
        this shard yet), and returned as a hit.
        """
        self._note_touch(key)
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                entry = pickle.load(fh)
            value = entry["value"]
        except FileNotFoundError:
            return self._remote_or_miss(key)
        except (OSError, pickle.PickleError, EOFError, KeyError, AttributeError):
            with self._lock:
                self.corrupt += 1
            try:
                path.unlink(missing_ok=True)
            except OSError:  # pragma: no cover
                pass
            return self._remote_or_miss(key, count_miss_anyway=True)
        with self._lock:
            self.hits += 1
        try:
            os.utime(path)  # LRU recency: a hit is a use
        except OSError:  # pragma: no cover
            pass
        return True, value

    def _remote_or_miss(
        self, key: str, *, count_miss_anyway: bool = False
    ) -> tuple[bool, Any]:
        """Resolve a local miss through the remote seam, else count it."""
        fetch = self.remote_fetch
        if fetch is not None:
            try:
                hit, value = fetch(key)
            except Exception:  # noqa: BLE001 - a sick peer degrades to a miss
                hit, value = False, None
            if hit:
                with self._lock:
                    self.remote_hits += 1
                    self.hits += 1
                    if count_miss_anyway:
                        self.misses += 1
                self.store(key, value, meta={"func": "", "origin": "read-through"})
                return True, value
        with self._lock:
            self.misses += 1
        return False, None

    def peek(self, key: str) -> tuple[bool, Any, dict[str, Any]]:
        """Local-only read of ``(hit, value, meta)`` for fleet peers.

        No counters move and :attr:`remote_fetch` is *not* consulted —
        this is what a worker answers when a peer read-throughs to it,
        so two workers missing the same key can never ping-pong.  A
        readable entry still bumps LRU recency (a replica serve is a
        use).
        """
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                entry = pickle.load(fh)
            value, meta = entry["value"], entry.get("meta", {})
        except FileNotFoundError:
            return False, None, {}
        except (OSError, pickle.PickleError, EOFError, KeyError, AttributeError):
            try:
                path.unlink(missing_ok=True)
            except OSError:  # pragma: no cover
                pass
            return False, None, {}
        try:
            os.utime(path)
        except OSError:  # pragma: no cover
            pass
        return True, value, meta

    def contains(self, key: str) -> bool:
        """Whether ``key`` is resident locally (no counters, no remote)."""
        return self._path(key).exists()

    def store(self, key: str, value: Any, *, meta: dict[str, Any] | None = None) -> None:
        """Persist one entry atomically, journal it, enforce the cap."""
        self._note_touch(key)
        path = self._path(key)
        entry = {"value": value, "meta": meta or {}}
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.parent / f".tmp-{os.getpid()}-{threading.get_ident()}-{key[:16]}"
            with open(tmp, "wb") as fh:
                pickle.dump(entry, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            return
        size = path.stat().st_size if path.exists() else 0
        self._journal({"op": "store", "key": key, "size": size,
                       "func": (meta or {}).get("func", "")})
        if self.cap_bytes is not None:
            self.evict_to_cap()

    # -- size accounting / eviction -----------------------------------

    def _resident(self) -> list[tuple[float, int, str, Path]]:
        """All entries as ``(mtime, size, key, path)`` (oldest-use first)."""
        out = []
        objects = self.root / "objects"
        for path in objects.glob("*/*/*.pkl"):
            try:
                st = path.stat()
            except OSError:  # pragma: no cover - concurrent eviction
                continue
            out.append((st.st_mtime, st.st_size, path.stem, path))
        out.sort()
        return out

    def resident_bytes(self) -> int:
        """Total size of all entries currently on disk."""
        return sum(size for _, size, _, _ in self._resident())

    def entry_count(self) -> int:
        """Number of entries currently on disk."""
        return len(self._resident())

    def keys(self) -> list[str]:
        """Sorted point keys currently resident in this shard.

        The fleet repair planner diffs these lists across workers to
        find under-replicated keys, so the answer is local disk truth
        — no counters move and :attr:`remote_fetch` is not consulted.
        """
        return sorted(key for _, _, key, _ in self._resident())

    def fingerprint(self) -> str:
        """Digest of the resident key set (shard identity at a glance).

        Workers advertise this at registration so the coordinator can
        tell a warm rejoin (same fingerprint lineage) from a wiped
        shard at a glance in its membership surfaces.  Content-only:
        two shards holding the same keys fingerprint identically.
        """
        digest = hashlib.sha256()
        for key in self.keys():
            digest.update(key.encode("ascii"))
            digest.update(b"\n")
        return digest.hexdigest()[:16]

    def shard_count(self) -> int:
        """Populated second-level shard directories (``objects/ab/cd``)."""
        return len({path.parent for _, _, _, path in self._resident()})

    def evict_to_cap(self) -> int:
        """Drop least-recently-used unpinned entries until under the cap.

        Returns the number of entries evicted.  Pinned entries (of any
        in-flight :meth:`pin_session`) are never dropped, even if that
        leaves the cache over its cap until the session ends.
        """
        if self.cap_bytes is None:
            return 0
        entries = self._resident()
        total = sum(size for _, size, _, _ in entries)
        if total <= self.cap_bytes:
            return 0
        pinned = self._pinned_keys()
        dropped = 0
        for _, size, key, path in entries:
            if total <= self.cap_bytes:
                break
            if key in pinned:
                continue
            try:
                path.unlink(missing_ok=True)
            except OSError:  # pragma: no cover
                continue
            total -= size
            dropped += 1
            self._journal({"op": "evict", "key": key, "size": size})
        with self._lock:
            self.evictions += dropped
        return dropped

    # -- manifest -----------------------------------------------------

    def manifest(self) -> dict[str, dict[str, Any]]:
        """Replay the journal into ``key -> {size, func}`` for live keys.

        Journal lines for keys no longer on disk (evicted by another
        worker, or dropped as corrupt) are filtered against the object
        tree, keeping the manifest truthful without locking writers.
        """
        state: dict[str, dict[str, Any]] = {}
        try:
            with open(self._manifest_path, encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:  # pragma: no cover - torn line
                        continue
                    if record.get("op") == "store":
                        state[record["key"]] = {
                            "size": record.get("size", 0),
                            "func": record.get("func", ""),
                        }
                    elif record.get("op") == "evict":
                        state.pop(record.get("key"), None)
        except FileNotFoundError:
            pass
        return {k: v for k, v in state.items() if self._path(k).exists()}

    def compact_manifest(self) -> None:
        """Rewrite the journal to one ``store`` line per live entry."""
        live = self.manifest()
        tmp = self.root / f".manifest-tmp-{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            for key in sorted(live):
                record = {"op": "store", "key": key, **live[key]}
                fh.write(json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n")
        os.replace(tmp, self._manifest_path)

    # -- stats --------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Counters + layout facts for status surfaces and responses."""
        with self._lock:
            counters = {
                "hits": self.hits,
                "misses": self.misses,
                "corrupt": self.corrupt,
                "evictions": self.evictions,
                "remote_hits": self.remote_hits,
                "pinned": sum(len(k) for stack in self._pins.values() for k in stack),
            }
        entries = self._resident()
        return {
            "root": str(self.root),
            "format": CACHE_FORMAT_VERSION,
            "cap_bytes": self.cap_bytes,
            "bytes": sum(size for _, size, _, _ in entries),
            "entries": len(entries),
            "shards": len({path.parent for _, _, _, path in entries}),
            **counters,
        }
