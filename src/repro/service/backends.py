"""Pluggable execution backends for the serving layer.

A backend answers one question: *given a point function and a batch of
keyword-argument dicts, produce the values* — in order, one per call.
Because every sweep point is a pure function of its arguments (the
property the whole cache/fan-out stack rests on), any backend returns
identical values and the scheduler can treat them interchangeably:

* :class:`InlineBackend` — compute in the serving process.  Zero
  overhead, right for tests and tiny points.
* :class:`ProcessPoolBackend` — a *persistent*
  ``ProcessPoolExecutor``.  Unlike the CLI's per-``map`` pool in
  :class:`~repro.experiments.sweep.SweepRunner`, workers here survive
  across requests, so a server amortises interpreter/import start-up
  over its whole lifetime.
* Anything registered via :func:`register_backend` — the seam a
  remote/cluster backend lands in later without touching scheduler
  code.

:class:`BackendSweepRunner` adapts a backend to the ``SweepRunner``
interface (same cache semantics, same result order) and additionally
harvests :class:`~repro.obs.ObsCapture` values from point results so
service responses can carry observability summaries.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Protocol, Sequence

from repro.experiments.sweep import ResultCache, SweepRunner
from repro.obs.probes import ObsCapture

__all__ = [
    "Backend",
    "BackendSweepRunner",
    "InlineBackend",
    "ProcessPoolBackend",
    "harvest_captures",
    "make_backend",
    "register_backend",
]


class Backend(Protocol):
    """Executes batches of pure point calls."""

    name: str

    def map(self, func: Callable[..., Any], calls: Sequence[dict[str, Any]]) -> list[Any]:
        """Return ``func(**call)`` for every call, aligned with ``calls``."""
        ...

    def close(self) -> None:
        """Release workers (idempotent)."""
        ...


class InlineBackend:
    """Serial, in-process execution."""

    name = "inline"

    def map(self, func: Callable[..., Any], calls: Sequence[dict[str, Any]]) -> list[Any]:
        """Evaluate every call serially on the calling thread."""
        return [func(**kwargs) for kwargs in calls]

    def close(self) -> None:
        """Nothing to release."""


class ProcessPoolBackend:
    """A persistent worker pool shared by every batch the server runs."""

    def __init__(self, jobs: int = 2):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.name = f"process:{jobs}"
        self._pool: ProcessPoolExecutor | None = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def map(self, func: Callable[..., Any], calls: Sequence[dict[str, Any]]) -> list[Any]:
        """Fan calls across the (lazily created) pool, in call order."""
        if len(calls) <= 1:  # don't pay IPC for a single point
            return [func(**kwargs) for kwargs in calls]
        pool = self._ensure_pool()
        futures = [pool.submit(func, **kwargs) for kwargs in calls]
        return [future.result() for future in futures]

    def close(self) -> None:
        """Shut the pool down; a later map() starts a fresh one."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


_REGISTRY: dict[str, Callable[[int], Backend]] = {
    "inline": lambda jobs: InlineBackend(),
    "process": lambda jobs: ProcessPoolBackend(jobs),
}


def register_backend(name: str, factory: Callable[[int], "Backend"]) -> None:
    """Register ``name`` (for ``--backend name[:jobs]``) -> factory(jobs)."""
    _REGISTRY[name] = factory


def make_backend(spec: str) -> Backend:
    """Build a backend from a ``name`` or ``name:jobs`` spec string."""
    name, _, arg = spec.partition(":")
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown backend {name!r} (known: {', '.join(sorted(_REGISTRY))})"
        )
    jobs = int(arg) if arg else 2
    return _REGISTRY[name](jobs)


def harvest_captures(values: Sequence[Any]) -> list[ObsCapture]:
    """Pull every :class:`ObsCapture` out of a batch of point results.

    Point functions surface captures two ways: as the second element of
    a ``(value, capture)`` tuple (the figure measurers) or as a
    ``.capture`` attribute (:class:`~repro.experiments.degraded.DegradedPoint`).
    Order follows the result order, so equal runs harvest equal lists.
    """
    captures: list[ObsCapture] = []
    for value in values:
        if isinstance(value, tuple):
            captures.extend(v for v in value if isinstance(v, ObsCapture))
        else:
            capture = getattr(value, "capture", None)
            if isinstance(capture, ObsCapture):
                captures.append(capture)
    return captures


class BackendSweepRunner(SweepRunner):
    """A :class:`SweepRunner` whose misses run on a service backend.

    Cache-hit resolution, result ordering and store semantics are all
    inherited; only the execute seam changes.  The runner also harvests
    every :class:`ObsCapture` flowing through ``map`` (cache hits
    included) into :attr:`captures` — experiment assemblers consume the
    point values, so this is the one place the serving layer can still
    see them for response summaries.
    """

    def __init__(
        self,
        backend: Backend,
        cache: ResultCache | None = None,
        *,
        max_batch: int = 64,
    ):
        super().__init__(jobs=1, cache=cache)
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.backend = backend
        self.max_batch = max_batch
        self.captures: list[ObsCapture] = []

    def map(self, func, calls, *, on_result=None):  # type: ignore[override]
        """SweepRunner.map plus ObsCapture harvesting into ``captures``."""
        results = super().map(func, calls, on_result=on_result)
        self.captures.extend(harvest_captures(results))
        return results

    def _execute(self, func: Callable[..., Any], calls: Sequence[dict[str, Any]]) -> list[Any]:
        from repro.service.batching import split_batches

        results: list[Any] = []
        for batch in split_batches(list(calls), self.max_batch):
            results.extend(self.backend.map(func, batch))
        return results
