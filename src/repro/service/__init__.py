"""Experiment serving: the long-lived, sharded, batched API layer.

The paper's methodology is a bag of independent (experiment,
processor-count) points; everything below this package — the DES, the
sweep runner, the result cache, fault campaigns, observability — makes
one such point a pure, cacheable function of its arguments.  This
package turns that substrate into a *service* (``ksr-serve``):

* :mod:`repro.service.cache2` — sharded, size-capped, pinnable result
  cache (two-level digest fan-out + manifest index).
* :mod:`repro.service.backends` — pluggable execution backends behind
  one protocol (inline, persistent process pool, room for remote).
* :mod:`repro.service.batching` — fan-out slicing, admission pricing
  and identical-request coalescing.
* :mod:`repro.service.scheduler` — bounded queueing with
  reject-with-retry-after overload behaviour.
* :mod:`repro.service.app` / :mod:`repro.service.cli` — the HTTP/JSON
  surface and the ``ksr-serve`` command line.
* :mod:`repro.service.fleet` — the federated tier: coordinator +
  worker fleet with consistent-hash routing, cache replication,
  per-tenant fair-share admission and the ``--loadgen`` harness.

Responses are byte-identical to the equivalent ``ksr-experiments`` /
``ksr-faults`` output: serving changes *where* points compute, never
*what* they compute.
"""

from repro.service.backends import (
    Backend,
    BackendSweepRunner,
    InlineBackend,
    ProcessPoolBackend,
    make_backend,
    register_backend,
)
from repro.service.batching import JobTable, estimate_points, split_batches
from repro.service.cache2 import ShardedResultCache
from repro.service.jobs import JobSpec, ServiceError
from repro.service.scheduler import Job, RejectedError, Scheduler

__all__ = [
    "Backend",
    "BackendSweepRunner",
    "InlineBackend",
    "Job",
    "JobSpec",
    "JobTable",
    "ProcessPoolBackend",
    "RejectedError",
    "Scheduler",
    "ServiceError",
    "ShardedResultCache",
    "estimate_points",
    "make_backend",
    "register_backend",
    "split_batches",
]
