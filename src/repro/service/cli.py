"""Command-line front end: ``ksr-serve``.

Serve the paper's experiments over a local HTTP/JSON API::

    ksr-serve                          # 127.0.0.1:8321, process pool of 2
    ksr-serve --port 0 --verbose       # ephemeral port (printed on start)
    ksr-serve --backend inline         # compute in the serving process
    ksr-serve --jobs 8                 # shorthand for --backend process:8
    ksr-serve --cache-dir /var/ksr --cache-cap-mb 256

Submit work with any HTTP client::

    curl -s localhost:8321/v1/experiments
    curl -s -X POST localhost:8321/v1/jobs -d \
      '{"kind": "experiment", "experiment": "fig3", "wait": true}'

``--smoke EXPERIMENT`` is the self-test CI runs: it starts a server on
an ephemeral port, submits the same job twice over real HTTP, and
asserts (a) both responses render byte-identically and (b) the second
run is served ≥95% from the sharded cache.

Fleet mode scales the same API across a coordinator + N workers::

    ksr-serve --fleet 3                # coordinator + 3 workers, one port
    ksr-serve --fleet 3 --replication 2
    ksr-serve --fleet-smoke fig2       # CI self-test: federated == single
    ksr-serve --loadgen                # closed-loop load generator
    ksr-serve --loadgen --loadgen-clients 1024 --loadgen-duration 5

``--fleet-smoke`` proves the federation contract: a campaign served by
a coordinator + workers is byte-identical to the single-daemon run and
a resubmission is ≥95% cache-served by the worker shards.
``--loadgen`` sustains thousands of concurrent closed-loop submissions
against a local fleet and writes throughput/latency/cache/fairness
numbers into ``BENCH_fleet.json``.

Multi-host mode splits the fleet across real processes/machines::

    # terminal 1 (or host A): the front door, fleet starts empty
    KSR_FLEET_TOKEN=$TOKEN ksr-serve --coordinator --port 8321

    # terminals 2..N (or hosts B..): workers dial in and register
    KSR_FLEET_TOKEN=$TOKEN ksr-serve --worker --join http://hostA:8321
    KSR_FLEET_TOKEN=$TOKEN ksr-serve --worker --join http://hostA:8321

Workers register over ``POST /v1/fleet/register`` and keep
re-registering (the worker-side heartbeat); the coordinator admits
them into the consistent-hash ring with a bounded key-range rebalance,
detects death via heartbeats, and after ``--dead-interval`` seconds
re-replicates the lost worker's key range from surviving replicas.
Every fleet control/data-plane call carries the shared secret
(``--fleet-token`` / ``$KSR_FLEET_TOKEN``) in ``X-Fleet-Token``.
``--multihost-smoke EXPERIMENT`` is the CI self-test: coordinator +
worker OS processes over real sockets, byte-identity vs a single
daemon, a SIGKILL, and a replication-factor-restored assertion.

On SIGTERM/SIGINT the server drains gracefully: admission stops
(503), in-flight jobs get a bounded deadline, the cache manifest is
compacted, then the process exits.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
import urllib.request

from repro.experiments.sweep import CACHE_DIR_ENV
from repro.util.cli import format_cache_stats, install_sigpipe_handler

__all__ = ["main", "post_job"]


def build_serve_parser() -> argparse.ArgumentParser:
    """The ``ksr-serve`` argument parser (separate for testability)."""
    parser = argparse.ArgumentParser(
        prog="ksr-serve",
        description="Serve KSR-1 experiment campaigns over a local HTTP/JSON API.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=8321, help="port (0: ephemeral)")
    parser.add_argument(
        "--backend",
        default=None,
        metavar="SPEC",
        help="execution backend: inline, process, process:N (default process:2)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="shorthand for --backend process:N",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=f"sharded cache root (default $${CACHE_DIR_ENV} or ./.ksr-cache2)",
    )
    parser.add_argument(
        "--cache-cap-mb",
        type=float,
        default=None,
        metavar="MB",
        help="LRU-evict the cache down to this size (default: uncapped)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="concurrent job executors"
    )
    parser.add_argument(
        "--queue-cap",
        type=int,
        default=8,
        help="max accepted-but-unfinished jobs before 429 rejection",
    )
    parser.add_argument(
        "--max-points",
        type=int,
        default=512,
        help="per-job sweep-point admission bound (oversized jobs get 413)",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="points per backend fan-out slice",
    )
    parser.add_argument(
        "--smoke",
        metavar="EXPERIMENT",
        default=None,
        help="self-test: serve EXPERIMENT twice over HTTP on an ephemeral "
        "port, assert byte-identical output and >=95%% cache hits on the "
        "resubmit, then exit",
    )
    parser.add_argument(
        "--drain-deadline",
        type=float,
        default=30.0,
        metavar="S",
        help="graceful-shutdown budget: seconds in-flight jobs get to "
        "finish after SIGTERM before the process exits anyway",
    )
    fleet = parser.add_argument_group("fleet mode")
    fleet.add_argument(
        "--fleet",
        type=int,
        default=None,
        metavar="N",
        help="serve a local fleet: a coordinator (public port) + N workers "
        "on ephemeral ports, each owning a cache shard by key range",
    )
    fleet.add_argument(
        "--replication",
        type=int,
        default=2,
        metavar="R",
        help="copies of each fresh result across the fleet (owner + R-1 "
        "ring successors; default 2)",
    )
    fleet.add_argument(
        "--fleet-smoke",
        metavar="EXPERIMENT",
        default=None,
        help="fleet self-test: serve EXPERIMENT on a coordinator + worker "
        "fleet, assert byte-identity with a single-daemon run and >=95%% "
        "cache-served on the resubmit, then exit",
    )
    fleet.add_argument(
        "--loadgen",
        action="store_true",
        help="closed-loop load generator: spin up a local fleet, sustain "
        "--loadgen-clients concurrent submissions for --loadgen-duration "
        "seconds, write BENCH_fleet.json",
    )
    fleet.add_argument(
        "--loadgen-clients", type=int, default=1024, metavar="N",
        help="concurrent closed-loop clients (default 1024)",
    )
    fleet.add_argument(
        "--loadgen-processes", type=int, default=8, metavar="N",
        help="generator OS processes the clients are spread over",
    )
    fleet.add_argument(
        "--loadgen-duration", type=float, default=5.0, metavar="S",
        help="seconds of sustained load (default 5)",
    )
    fleet.add_argument(
        "--loadgen-tenants", type=int, default=4, metavar="N",
        help="tenants the clients are spread over (fairness surface)",
    )
    fleet.add_argument(
        "--loadgen-out", default="BENCH_fleet.json", metavar="FILE",
        help="report artifact path (default BENCH_fleet.json)",
    )
    multihost = parser.add_argument_group("multi-host mode")
    multihost.add_argument(
        "--coordinator",
        action="store_true",
        help="serve a standalone coordinator with an empty fleet; workers "
        "join at runtime via POST /v1/fleet/register",
    )
    multihost.add_argument(
        "--worker",
        action="store_true",
        help="serve a standalone fleet worker that registers with the "
        "coordinator named by --join",
    )
    multihost.add_argument(
        "--join",
        metavar="URL",
        default=None,
        help="coordinator base URL a --worker registers with",
    )
    multihost.add_argument(
        "--worker-id",
        metavar="NAME",
        default=None,
        help="stable worker identity (default worker-<host>-<pid>); keep "
        "it stable across restarts to rejoin with the same shard",
    )
    multihost.add_argument(
        "--advertise",
        metavar="URL",
        default=None,
        help="base URL the coordinator should reach this worker at "
        "(default http://<bind-host>:<bound-port>)",
    )
    multihost.add_argument(
        "--fleet-token",
        metavar="TOKEN",
        default=None,
        help="shared secret for X-Fleet-Token auth on every fleet "
        "control/data-plane call (default $KSR_FLEET_TOKEN; unset: open, "
        "for TLS-terminated deployments)",
    )
    multihost.add_argument(
        "--dead-interval",
        type=float,
        default=10.0,
        metavar="S",
        help="seconds a worker may stay dead before the coordinator "
        "re-replicates its key range from surviving replicas (default 10)",
    )
    multihost.add_argument(
        "--register-interval",
        type=float,
        default=5.0,
        metavar="S",
        help="seconds between a worker's re-registrations (the worker-side "
        "heartbeat; default 5)",
    )
    multihost.add_argument(
        "--multihost-smoke",
        metavar="EXPERIMENT",
        default=None,
        help="multi-host self-test: coordinator + worker OS processes over "
        "real sockets; asserts byte-identity with a single daemon, 401 on "
        "tokenless fleet calls, and replication-factor restoration after a "
        "SIGKILL, then exits",
    )
    multihost.add_argument(
        "--multihost-workers",
        type=int,
        default=3,
        metavar="N",
        help="worker processes the multi-host smoke spawns (default 3)",
    )
    multihost.add_argument(
        "--multihost-stats-out",
        default="BENCH_multihost.json",
        metavar="FILE",
        help="multi-host smoke stats artifact (default BENCH_multihost.json)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log requests and cache stats"
    )
    return parser


def _make_app(args):
    import os

    from repro.service.app import ServiceApp

    cache_dir = args.cache_dir or os.environ.get(CACHE_DIR_ENV + "2", ".ksr-cache2")
    backend = args.backend
    if backend is None:
        backend = f"process:{args.jobs}" if args.jobs else "process:2"
    elif args.jobs:
        raise SystemExit("pass --backend or --jobs, not both")
    cap = int(args.cache_cap_mb * 1024 * 1024) if args.cache_cap_mb else None
    return ServiceApp(
        cache_dir,
        backend=backend,
        cap_bytes=cap,
        workers=args.workers,
        queue_cap=args.queue_cap,
        max_points=args.max_points,
        max_batch=args.max_batch,
    )


def post_job(base_url: str, body: dict, *, timeout: float = 600.0) -> dict:
    """Submit one job body and return the decoded JSON response."""
    request = urllib.request.Request(
        f"{base_url}/v1/jobs",
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def run_smoke(args) -> int:
    """The CI self-test (see module docstring)."""
    import threading

    from repro.service.app import make_server

    app = _make_app(args)
    server = make_server(app, args.host, 0, verbose=False)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://{server.server_address[0]}:{server.server_address[1]}"
    body = {"kind": "experiment", "experiment": args.smoke, "wait": True}
    try:
        first = post_job(base, body)
        second = post_job(base, body)
    finally:
        server.shutdown()
        thread.join(timeout=10)
        app.close()
    for name, doc in (("first", first), ("second", second)):
        if doc.get("status") != "done":
            print(f"smoke: {name} submission did not finish: {doc}", file=sys.stderr)
            return 1
    if first["result"]["rendered"] != second["result"]["rendered"]:
        print("smoke: resubmission rendered differently", file=sys.stderr)
        return 1
    stats = second["cache"]
    lookups = stats["hits"] + stats["misses"]
    rate = stats["hits"] / lookups if lookups else 0.0
    print(first["result"]["rendered"])
    print(
        f"smoke {args.smoke}: resubmit {stats['hits']}/{lookups} cache hits "
        f"({rate:.0%}) from {stats['root']}"
    )
    if rate < 0.95:
        print("smoke: resubmit hit rate under 95%", file=sys.stderr)
        return 1
    return 0


def _fleet_cache_root(args) -> str:
    import os

    return args.cache_dir or os.environ.get(CACHE_DIR_ENV + "2", ".ksr-fleet-cache")


def _make_fleet(args, *, n_workers: int | None = None, **overrides):
    """A :class:`LocalFleet` from CLI options (+ keyword overrides)."""
    from repro.service.fleet import LocalFleet

    backend = args.backend
    if backend is None:
        backend = f"process:{args.jobs}" if args.jobs else "inline"
    options = dict(
        n_workers=n_workers or args.fleet or 3,
        backend=backend,
        replication=args.replication,
        queue_cap=args.queue_cap,
        worker_threads=args.workers,
        max_points=args.max_points,
        max_batch=args.max_batch,
        dead_interval=args.dead_interval,
    )
    auth = _fleet_auth(args)
    if auth.enabled:  # else LocalFleet generates its own secret
        options["auth"] = auth
    options.update(overrides)
    return LocalFleet(_fleet_cache_root(args), **options)


def run_fleet_smoke(args) -> int:
    """Fleet CI self-test: federated == single daemon, cache-served resubmit.

    One campaign runs three times: once on a plain single-daemon app
    (fresh cache), then twice through a coordinator + worker fleet
    (fresh shards).  The federated result must be byte-identical to the
    single-daemon one, and the fleet resubmission must be >=95%
    cache-served out of the worker shards.
    """
    import tempfile

    from repro.service.app import ServiceApp, make_server

    body = {"kind": "experiment", "experiment": args.fleet_smoke, "wait": True}
    with tempfile.TemporaryDirectory(prefix="ksr-fleet-smoke-") as tmp:
        # -- reference: one daemon, cold cache --------------------------
        app = ServiceApp(f"{tmp}/single", backend="inline", workers=2)
        server = make_server(app, args.host, 0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://{server.server_address[0]}:{server.server_address[1]}"
        try:
            single = post_job(base, body)
        finally:
            server.shutdown()
            thread.join(timeout=10)
            app.close()
        if single.get("status") != "done":
            print(f"fleet-smoke: single-daemon run failed: {single}", file=sys.stderr)
            return 1
        # -- the fleet: coordinator + N workers, cold shards ------------
        n_workers = args.fleet or 3
        args_cache_dir = args.cache_dir
        try:
            args.cache_dir = f"{tmp}/fleet"
            fleet = _make_fleet(args, n_workers=n_workers, backend="inline")
        finally:
            args.cache_dir = args_cache_dir
        try:
            first = post_job(fleet.base_url, body)
            second = post_job(fleet.base_url, body)
            workers_line = ", ".join(
                f"{wid}: {member.app.cache.entry_count()} entries"
                for wid, member in sorted(fleet.workers.items())
            )
        finally:
            fleet.close()
    for name, doc in (("first", first), ("second", second)):
        if doc.get("status") != "done":
            print(f"fleet-smoke: {name} fleet run failed: {doc}", file=sys.stderr)
            return 1
    single_payload = json.dumps(single["result"], sort_keys=True)
    for name, doc in (("first", first), ("second", second)):
        if json.dumps(doc["result"], sort_keys=True) != single_payload:
            print(
                f"fleet-smoke: {name} federated result differs from the "
                f"single-daemon run", file=sys.stderr,
            )
            return 1
    stats = second["cache"]
    lookups = stats["hits"] + stats["misses"]
    rate = stats["hits"] / lookups if lookups else 0.0
    print(second["result"]["rendered"])
    print(f"fleet-smoke {args.fleet_smoke}: {n_workers} workers; shards: {workers_line}")
    print(
        f"fleet-smoke {args.fleet_smoke}: federated output byte-identical to "
        f"single daemon; resubmit {stats['hits']}/{lookups} cache-served "
        f"({rate:.0%}, {stats['remote_hits']} via replicas)"
    )
    if rate < 0.95:
        print("fleet-smoke: resubmit cache-served rate under 95%", file=sys.stderr)
        return 1
    return 0


def run_loadgen_cmd(args) -> int:
    """Spin up a local fleet and drive it with the load generator."""
    import tempfile

    from repro.service.fleet import run_loadgen

    with tempfile.TemporaryDirectory(prefix="ksr-loadgen-fleet-") as tmp:
        args_cache_dir = args.cache_dir
        try:
            args.cache_dir = args.cache_dir or tmp
            # A loadgen fleet needs headroom: deep queue, many executor
            # threads, or the generator only ever measures 429s.
            fleet = _make_fleet(
                args,
                queue_cap=max(args.queue_cap, args.loadgen_clients),
                exec_workers=16,
            )
        finally:
            args.cache_dir = args_cache_dir
        try:
            print(
                f"loadgen: {args.loadgen_clients} clients / "
                f"{args.loadgen_processes} processes for "
                f"{args.loadgen_duration}s against {fleet.base_url} "
                f"({len(fleet.workers)} workers)"
            )
            report = run_loadgen(
                fleet.base_url,
                clients=args.loadgen_clients,
                processes=args.loadgen_processes,
                duration_s=args.loadgen_duration,
                tenants=args.loadgen_tenants,
                out_path=args.loadgen_out,
            )
        finally:
            fleet.close(drain_deadline=args.drain_deadline)
    totals, latency = report["totals"], report["latency_ms"]
    print(
        f"loadgen: {totals['completed']} jobs done "
        f"({totals['throughput_jobs_per_s']}/s), "
        f"{totals['rejected']} rejected, {totals['errors']} errors"
    )
    print(
        f"loadgen: latency p50 {latency['p50']}ms / p90 {latency['p90']}ms / "
        f"p99 {latency['p99']}ms"
    )
    print(
        f"loadgen: cache-served {report['cache']['served_fraction']:.1%}, "
        f"coalesce rate {report['coalesce']['rate']:.1%}, "
        f"fairness (Jain) {report['fairness']['jain_index']}"
    )
    print(f"loadgen: report written to {args.loadgen_out}")
    if totals["completed"] == 0:
        print("loadgen: no job completed", file=sys.stderr)
        return 1
    return 0


def _fleet_auth(args):
    """Shared-secret auth from ``--fleet-token`` or ``$KSR_FLEET_TOKEN``."""
    import os

    from repro.service.fleet import FleetAuth
    from repro.service.fleet.wire import FLEET_TOKEN_ENV

    token = args.fleet_token or os.environ.get(FLEET_TOKEN_ENV) or None
    return FleetAuth(token)


def _fleet_get(
    base: str, path: str, *, token: str | None = None, timeout: float = 10.0
) -> tuple[int, dict]:
    """GET a JSON surface, optionally presenting the fleet token."""
    import urllib.error

    from repro.service.fleet.wire import FLEET_TOKEN_HEADER

    headers = {FLEET_TOKEN_HEADER: token} if token else {}
    request = urllib.request.Request(base + path, headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def _poll_until(deadline_s: float, probe, interval: float = 0.2):
    """Re-run ``probe`` until it returns truthy or the deadline passes."""
    import time

    end = time.monotonic() + deadline_s
    while time.monotonic() < end:
        try:
            result = probe()
        except OSError:
            result = None  # endpoint not up yet; keep polling
        if result:
            return result
        time.sleep(interval)
    return None


def run_worker(args) -> int:
    """``ksr-serve --worker --join URL``: one standalone fleet worker."""
    import os
    import socket
    from pathlib import Path

    from repro.service.fleet import FleetWorkerApp, Registrar, make_worker_server

    if not args.join:
        raise SystemExit("--worker requires --join COORDINATOR_URL")
    auth = _fleet_auth(args)
    backend = args.backend or (f"process:{args.jobs}" if args.jobs else "inline")
    worker_id = args.worker_id or f"worker-{socket.gethostname()}-{os.getpid()}"
    root = _fleet_cache_root(args)
    # An explicit --cache-dir IS the shard; the default root gets a
    # per-worker subdirectory so co-hosted workers never share a shard.
    cache_dir = root if args.cache_dir else str(Path(root) / worker_id)
    cap = int(args.cache_cap_mb * 1024 * 1024) if args.cache_cap_mb else None
    app = FleetWorkerApp(
        cache_dir,
        worker_id=worker_id,
        backend=backend,
        cap_bytes=cap,
        workers=args.workers,
        queue_cap=args.queue_cap,
        max_points=args.max_points,
        max_batch=args.max_batch,
        auth=auth,
    )
    server = make_worker_server(app, args.host, args.port, verbose=args.verbose)
    host, port = server.server_address[0], server.server_address[1]
    advertised = (args.advertise or f"http://{host}:{port}").rstrip("/")
    registrar = Registrar(app, args.join, advertised,
                          interval=args.register_interval)
    registrar.start()
    print(f"ksr-serve worker {worker_id} listening on http://{host}:{port}")
    print(f"  joining {args.join} as {advertised} "
          f"(re-register every {args.register_interval:.0f}s)")
    print(f"  shard {cache_dir}, "
          f"auth {'on' if auth.enabled else 'OFF (open fleet plane)'}")

    def close() -> int:
        registrar.stop()
        return app.close(drain_deadline=args.drain_deadline)

    return _serve_until_signal(
        f"ksr-serve worker {worker_id}", server, close, args.drain_deadline
    )


def run_coordinator(args) -> int:
    """``ksr-serve --coordinator``: the fleet front door, starting empty."""
    from repro.service.fleet import (
        CoordinatorApp,
        FleetClient,
        make_coordinator_server,
    )

    auth = _fleet_auth(args)
    client = FleetClient(
        replication=args.replication,
        dead_interval=args.dead_interval,
        auth=auth,
    )
    coordinator = CoordinatorApp(
        client,
        exec_workers=max(args.workers, 4),
        queue_cap=args.queue_cap,
        max_points=args.max_points,
    )
    server = make_coordinator_server(
        coordinator, args.host, args.port, verbose=args.verbose
    )
    host, port = server.server_address[0], server.server_address[1]
    print(f"ksr-serve coordinator listening on http://{host}:{port}")
    print(f"  fleet starts empty; workers join via "
          f"`ksr-serve --worker --join http://{host}:{port}`")
    print(f"  replication {args.replication}, "
          f"dead interval {args.dead_interval:.0f}s, "
          f"auth {'on' if auth.enabled else 'OFF (open fleet plane)'}")
    return _serve_until_signal(
        "ksr-serve coordinator",
        server,
        lambda: coordinator.close(drain_deadline=args.drain_deadline),
        args.drain_deadline,
    )


def run_multihost_smoke(args) -> int:
    """Multi-host CI self-test: real worker OS processes join the fleet.

    Starts a coordinator with an empty fleet, spawns
    ``--multihost-workers`` separate ``ksr-serve --worker --join``
    processes that register over real sockets, then proves the
    multi-host contract end to end:

    1. tokenless fleet-plane requests are rejected (401);
    2. a campaign served by the registered fleet is byte-identical to
       a single-daemon run;
    3. SIGKILLing a populated worker past the dead interval triggers
       re-replication that restores the replication factor
       (``under_replicated == 0`` again), and a resubmitted campaign
       still completes, cache-served — no job lost.

    The before/after replication reports land in
    ``--multihost-stats-out`` as a CI artifact.
    """
    import os
    import subprocess
    import tempfile

    from repro.service.app import ServiceApp, make_server
    from repro.service.fleet import (
        CoordinatorApp,
        FleetAuth,
        FleetClient,
        make_coordinator_server,
    )
    from repro.service.fleet.wire import FLEET_TOKEN_ENV

    n_workers = args.multihost_workers
    token = (args.fleet_token or os.environ.get(FLEET_TOKEN_ENV)
             or FleetAuth.generate().secret)
    body = {"kind": "experiment", "experiment": args.multihost_smoke,
            "wait": True}

    def fail(message: str) -> int:
        print(f"multihost-smoke: {message}", file=sys.stderr)
        return 1

    with tempfile.TemporaryDirectory(prefix="ksr-multihost-") as tmp:
        # -- reference: one daemon, cold cache --------------------------
        app = ServiceApp(f"{tmp}/single", backend="inline", workers=2)
        server = make_server(app, "127.0.0.1", 0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://{server.server_address[0]}:{server.server_address[1]}"
        try:
            single = post_job(base, body)
        finally:
            server.shutdown()
            thread.join(timeout=10)
            app.close()
        if single.get("status") != "done":
            return fail(f"single-daemon reference failed: {single}")
        single_payload = json.dumps(single["result"], sort_keys=True)

        # -- the fleet: in-process coordinator, subprocess workers ------
        client = FleetClient(
            replication=args.replication,
            dead_interval=args.dead_interval,
            health_timeout=2.0,
            auth=FleetAuth(token),
        )
        coordinator = CoordinatorApp(
            client,
            exec_workers=4,
            queue_cap=args.queue_cap,
            max_points=args.max_points,
            heartbeat_interval=0.5,
        )
        coord_server = make_coordinator_server(coordinator, "127.0.0.1", 0)
        coord_thread = threading.Thread(
            target=coord_server.serve_forever, daemon=True
        )
        coord_thread.start()
        coord = (f"http://{coord_server.server_address[0]}"
                 f":{coord_server.server_address[1]}")
        env = dict(os.environ)
        env[FLEET_TOKEN_ENV] = token
        procs: list[subprocess.Popen] = []
        try:
            for i in range(n_workers):
                procs.append(subprocess.Popen(
                    [
                        sys.executable, "-m", "repro.service.cli",
                        "--worker", "--join", coord,
                        "--worker-id", f"mh-worker-{i}",
                        "--port", "0",
                        "--backend", "inline",
                        "--cache-dir", f"{tmp}/mh-worker-{i}",
                        "--register-interval", "1",
                    ],
                    env=env,
                ))
            status, _ = _fleet_get(coord, "/v1/fleet/workers")
            if status != 401:
                return fail(f"tokenless fleet request got {status}, want 401")

            def registered():
                status, doc = _fleet_get(
                    coord, "/v1/fleet/workers", token=token
                )
                if status == 200 and len(doc.get("alive", [])) == n_workers:
                    return doc
                return None

            members = _poll_until(60.0, registered)
            if members is None:
                return fail(f"{n_workers} workers never registered")
            print(f"multihost-smoke: {n_workers} worker processes joined: "
                  f"{', '.join(members['alive'])}")

            first = post_job(coord, body)
            if first.get("status") != "done":
                return fail(f"federated run failed: {first}")
            if json.dumps(first["result"], sort_keys=True) != single_payload:
                return fail("federated result differs from single daemon")
            print("multihost-smoke: federated output byte-identical to "
                  "single daemon")

            # Wait for async replication to land: every key at factor.
            def settled():
                status, doc = _fleet_get(
                    coord, "/v1/fleet/replication", token=token
                )
                if (status == 200 and doc.get("keys", 0) > 0
                        and doc["under_replicated"] == 0):
                    return doc
                return None

            before = _poll_until(30.0, settled)
            if before is None:
                return fail("replication never reached the full factor")
            print(f"multihost-smoke: {before['keys']} keys at replication "
                  f"{before['replication']} across {before['alive']} workers")

            # SIGKILL a worker that actually holds entries.
            victim = None
            for wid, info in members["workers"].items():
                status, doc = _fleet_get(
                    info["base_url"], "/v1/fleet/keys", token=token
                )
                if status == 200 and doc["count"] > 0:
                    victim = wid
                    break
            if victim is None:
                return fail("no worker holds any entry; nothing to kill")
            procs[int(victim.rsplit("-", 1)[1])].kill()
            print(f"multihost-smoke: SIGKILLed {victim}; waiting out the "
                  f"{args.dead_interval:.0f}s dead interval")

            def repaired():
                status, doc = _fleet_get(coord, "/v1/stats", token=token)
                if status != 200:
                    return None
                fleet = doc["fleet"]
                report = fleet.get("replication_status") or {}
                if (fleet["repairs"] >= 1
                        and victim not in fleet["alive"]
                        and report.get("alive") == n_workers - 1
                        and report.get("keys", 0) > 0
                        and report.get("under_replicated") == 0):
                    return fleet
                return None

            fleet = _poll_until(args.dead_interval + 60.0, repaired)
            if fleet is None:
                return fail("re-replication never restored the factor")
            after = fleet["replication_status"]
            print(f"multihost-smoke: re-replication restored the factor "
                  f"({fleet['re_replicated']} entries pushed, "
                  f"{after['keys']} keys, 0 under-replicated)")

            second = post_job(coord, body)
            if second.get("status") != "done":
                return fail(f"post-kill resubmission failed: {second}")
            if json.dumps(second["result"], sort_keys=True) != single_payload:
                return fail("post-kill result differs from single daemon")
            stats = second["cache"]
            lookups = stats["hits"] + stats["misses"]
            rate = stats["hits"] / lookups if lookups else 0.0
            print(f"multihost-smoke: post-kill resubmit {stats['hits']}/"
                  f"{lookups} cache-served ({rate:.0%}); no job lost")
            if rate < 0.95:
                return fail("post-kill resubmit cache-served rate under 95%")

            artifact = {
                "benchmark": "multihost-smoke",
                "experiment": args.multihost_smoke,
                "workers": n_workers,
                "auth": True,
                "victim": victim,
                "replication_before": before,
                "replication_after": after,
                "repairs": fleet["repairs"],
                "re_replicated": fleet["re_replicated"],
                "registrations": fleet["registrations"],
                "cache_served_rate": round(rate, 4),
            }
            with open(args.multihost_stats_out, "w", encoding="utf-8") as fh:
                json.dump(artifact, fh, indent=2, sort_keys=True)
            print(f"multihost-smoke: stats written to "
                  f"{args.multihost_stats_out}")
            return 0
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.terminate()
            for proc in procs:
                try:
                    proc.wait(timeout=15)
                except subprocess.TimeoutExpired:
                    proc.kill()
            coord_server.shutdown()
            coord_thread.join(timeout=10)
            coordinator.close(drain_deadline=5)


def _serve_until_signal(serve_label: str, server, close, deadline: float) -> int:
    """Run ``server`` until SIGTERM/SIGINT, then drain gracefully."""
    stop = threading.Event()

    def on_signal(signum, frame):  # pragma: no cover - signal plumbing
        stop.set()

    try:
        signal.signal(signal.SIGTERM, on_signal)
        signal.signal(signal.SIGINT, on_signal)
    except ValueError:  # pragma: no cover - not the main thread
        pass
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        stop.wait()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    print(f"{serve_label}: draining (deadline {deadline:.0f}s)")
    server.shutdown()
    thread.join(timeout=10)
    stranded = close()
    if stranded:
        print(f"{serve_label}: exited with {stranded} job(s) unfinished",
              file=sys.stderr)
        return 1
    print(f"{serve_label}: clean shutdown")
    return 0


def run_fleet_serve(args) -> int:
    """``ksr-serve --fleet N``: a local fleet behind one coordinator port."""
    from repro.service.fleet import make_coordinator_server

    fleet = _make_fleet(args)
    # Re-bind the coordinator onto the requested public port.
    coordinator = fleet.coordinator
    fleet._coord.server.shutdown()
    fleet._coord.server.server_close()
    fleet._coord.thread.join(timeout=10)
    server = make_coordinator_server(
        coordinator, args.host, args.port, verbose=args.verbose
    )
    host, port = server.server_address[0], server.server_address[1]
    print(f"ksr-serve fleet listening on http://{host}:{port}")
    for wid, url in sorted(fleet.worker_urls().items()):
        print(f"  {wid} at {url}")
    print(f"  replication {args.replication}, queue cap {args.queue_cap}")

    def close() -> int:
        stranded = coordinator.close(drain_deadline=args.drain_deadline)
        for member in fleet.workers.values():
            member.stop(drain_deadline=args.drain_deadline)
        return stranded

    return _serve_until_signal("ksr-serve fleet", server, close, args.drain_deadline)


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``ksr-serve``."""
    install_sigpipe_handler()
    args = build_serve_parser().parse_args(argv)
    if args.smoke:
        return run_smoke(args)
    if args.fleet_smoke:
        return run_fleet_smoke(args)
    if args.multihost_smoke:
        return run_multihost_smoke(args)
    if args.loadgen:
        return run_loadgen_cmd(args)
    if args.worker:
        return run_worker(args)
    if args.coordinator:
        return run_coordinator(args)
    if args.fleet:
        return run_fleet_serve(args)
    from repro.service.app import make_server

    app = _make_app(args)
    server = make_server(app, args.host, args.port, verbose=args.verbose)
    host, port = server.server_address[0], server.server_address[1]
    print(f"ksr-serve listening on http://{host}:{port}")
    print(f"  backend {app.scheduler.backend.name}, "
          f"{app.scheduler.stats()['workers']} workers, "
          f"queue cap {app.scheduler.queue_cap}")
    print(f"  {format_cache_stats(app.cache.stats())}")
    return _serve_until_signal(
        "ksr-serve",
        server,
        lambda: app.close(drain_deadline=args.drain_deadline),
        args.drain_deadline,
    )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
