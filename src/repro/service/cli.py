"""Command-line front end: ``ksr-serve``.

Serve the paper's experiments over a local HTTP/JSON API::

    ksr-serve                          # 127.0.0.1:8321, process pool of 2
    ksr-serve --port 0 --verbose       # ephemeral port (printed on start)
    ksr-serve --backend inline         # compute in the serving process
    ksr-serve --jobs 8                 # shorthand for --backend process:8
    ksr-serve --cache-dir /var/ksr --cache-cap-mb 256

Submit work with any HTTP client::

    curl -s localhost:8321/v1/experiments
    curl -s -X POST localhost:8321/v1/jobs -d \
      '{"kind": "experiment", "experiment": "fig3", "wait": true}'

``--smoke EXPERIMENT`` is the self-test CI runs: it starts a server on
an ephemeral port, submits the same job twice over real HTTP, and
asserts (a) both responses render byte-identically and (b) the second
run is served ≥95% from the sharded cache.
"""

from __future__ import annotations

import argparse
import json
import sys
import urllib.request

from repro.experiments.sweep import CACHE_DIR_ENV
from repro.util.cli import format_cache_stats, install_sigpipe_handler

__all__ = ["main", "post_job"]


def build_serve_parser() -> argparse.ArgumentParser:
    """The ``ksr-serve`` argument parser (separate for testability)."""
    parser = argparse.ArgumentParser(
        prog="ksr-serve",
        description="Serve KSR-1 experiment campaigns over a local HTTP/JSON API.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=8321, help="port (0: ephemeral)")
    parser.add_argument(
        "--backend",
        default=None,
        metavar="SPEC",
        help="execution backend: inline, process, process:N (default process:2)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="shorthand for --backend process:N",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=f"sharded cache root (default $${CACHE_DIR_ENV} or ./.ksr-cache2)",
    )
    parser.add_argument(
        "--cache-cap-mb",
        type=float,
        default=None,
        metavar="MB",
        help="LRU-evict the cache down to this size (default: uncapped)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="concurrent job executors"
    )
    parser.add_argument(
        "--queue-cap",
        type=int,
        default=8,
        help="max accepted-but-unfinished jobs before 429 rejection",
    )
    parser.add_argument(
        "--max-points",
        type=int,
        default=512,
        help="per-job sweep-point admission bound (oversized jobs get 413)",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="points per backend fan-out slice",
    )
    parser.add_argument(
        "--smoke",
        metavar="EXPERIMENT",
        default=None,
        help="self-test: serve EXPERIMENT twice over HTTP on an ephemeral "
        "port, assert byte-identical output and >=95%% cache hits on the "
        "resubmit, then exit",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log requests and cache stats"
    )
    return parser


def _make_app(args):
    import os

    from repro.service.app import ServiceApp

    cache_dir = args.cache_dir or os.environ.get(CACHE_DIR_ENV + "2", ".ksr-cache2")
    backend = args.backend
    if backend is None:
        backend = f"process:{args.jobs}" if args.jobs else "process:2"
    elif args.jobs:
        raise SystemExit("pass --backend or --jobs, not both")
    cap = int(args.cache_cap_mb * 1024 * 1024) if args.cache_cap_mb else None
    return ServiceApp(
        cache_dir,
        backend=backend,
        cap_bytes=cap,
        workers=args.workers,
        queue_cap=args.queue_cap,
        max_points=args.max_points,
        max_batch=args.max_batch,
    )


def post_job(base_url: str, body: dict, *, timeout: float = 600.0) -> dict:
    """Submit one job body and return the decoded JSON response."""
    request = urllib.request.Request(
        f"{base_url}/v1/jobs",
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def run_smoke(args) -> int:
    """The CI self-test (see module docstring)."""
    import threading

    from repro.service.app import make_server

    app = _make_app(args)
    server = make_server(app, args.host, 0, verbose=False)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://{server.server_address[0]}:{server.server_address[1]}"
    body = {"kind": "experiment", "experiment": args.smoke, "wait": True}
    try:
        first = post_job(base, body)
        second = post_job(base, body)
    finally:
        server.shutdown()
        thread.join(timeout=10)
        app.close()
    for name, doc in (("first", first), ("second", second)):
        if doc.get("status") != "done":
            print(f"smoke: {name} submission did not finish: {doc}", file=sys.stderr)
            return 1
    if first["result"]["rendered"] != second["result"]["rendered"]:
        print("smoke: resubmission rendered differently", file=sys.stderr)
        return 1
    stats = second["cache"]
    lookups = stats["hits"] + stats["misses"]
    rate = stats["hits"] / lookups if lookups else 0.0
    print(first["result"]["rendered"])
    print(
        f"smoke {args.smoke}: resubmit {stats['hits']}/{lookups} cache hits "
        f"({rate:.0%}) from {stats['root']}"
    )
    if rate < 0.95:
        print("smoke: resubmit hit rate under 95%", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``ksr-serve``."""
    install_sigpipe_handler()
    args = build_serve_parser().parse_args(argv)
    if args.smoke:
        return run_smoke(args)
    from repro.service.app import make_server

    app = _make_app(args)
    server = make_server(app, args.host, args.port, verbose=args.verbose)
    host, port = server.server_address[0], server.server_address[1]
    print(f"ksr-serve listening on http://{host}:{port}")
    print(f"  backend {app.scheduler.backend.name}, "
          f"{app.scheduler.stats()['workers']} workers, "
          f"queue cap {app.scheduler.queue_cap}")
    print(f"  {format_cache_stats(app.cache.stats())}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        print("shutting down")
    finally:
        server.shutdown()
        app.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
