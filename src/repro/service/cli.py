"""Command-line front end: ``ksr-serve``.

Serve the paper's experiments over a local HTTP/JSON API::

    ksr-serve                          # 127.0.0.1:8321, process pool of 2
    ksr-serve --port 0 --verbose       # ephemeral port (printed on start)
    ksr-serve --backend inline         # compute in the serving process
    ksr-serve --jobs 8                 # shorthand for --backend process:8
    ksr-serve --cache-dir /var/ksr --cache-cap-mb 256

Submit work with any HTTP client::

    curl -s localhost:8321/v1/experiments
    curl -s -X POST localhost:8321/v1/jobs -d \
      '{"kind": "experiment", "experiment": "fig3", "wait": true}'

``--smoke EXPERIMENT`` is the self-test CI runs: it starts a server on
an ephemeral port, submits the same job twice over real HTTP, and
asserts (a) both responses render byte-identically and (b) the second
run is served ≥95% from the sharded cache.

Fleet mode scales the same API across a coordinator + N workers::

    ksr-serve --fleet 3                # coordinator + 3 workers, one port
    ksr-serve --fleet 3 --replication 2
    ksr-serve --fleet-smoke fig2       # CI self-test: federated == single
    ksr-serve --loadgen                # closed-loop load generator
    ksr-serve --loadgen --loadgen-clients 1024 --loadgen-duration 5

``--fleet-smoke`` proves the federation contract: a campaign served by
a coordinator + workers is byte-identical to the single-daemon run and
a resubmission is ≥95% cache-served by the worker shards.
``--loadgen`` sustains thousands of concurrent closed-loop submissions
against a local fleet and writes throughput/latency/cache/fairness
numbers into ``BENCH_fleet.json``.

On SIGTERM/SIGINT the server drains gracefully: admission stops
(503), in-flight jobs get a bounded deadline, the cache manifest is
compacted, then the process exits.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
import urllib.request

from repro.experiments.sweep import CACHE_DIR_ENV
from repro.util.cli import format_cache_stats, install_sigpipe_handler

__all__ = ["main", "post_job"]


def build_serve_parser() -> argparse.ArgumentParser:
    """The ``ksr-serve`` argument parser (separate for testability)."""
    parser = argparse.ArgumentParser(
        prog="ksr-serve",
        description="Serve KSR-1 experiment campaigns over a local HTTP/JSON API.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=8321, help="port (0: ephemeral)")
    parser.add_argument(
        "--backend",
        default=None,
        metavar="SPEC",
        help="execution backend: inline, process, process:N (default process:2)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="shorthand for --backend process:N",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=f"sharded cache root (default $${CACHE_DIR_ENV} or ./.ksr-cache2)",
    )
    parser.add_argument(
        "--cache-cap-mb",
        type=float,
        default=None,
        metavar="MB",
        help="LRU-evict the cache down to this size (default: uncapped)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="concurrent job executors"
    )
    parser.add_argument(
        "--queue-cap",
        type=int,
        default=8,
        help="max accepted-but-unfinished jobs before 429 rejection",
    )
    parser.add_argument(
        "--max-points",
        type=int,
        default=512,
        help="per-job sweep-point admission bound (oversized jobs get 413)",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="points per backend fan-out slice",
    )
    parser.add_argument(
        "--smoke",
        metavar="EXPERIMENT",
        default=None,
        help="self-test: serve EXPERIMENT twice over HTTP on an ephemeral "
        "port, assert byte-identical output and >=95%% cache hits on the "
        "resubmit, then exit",
    )
    parser.add_argument(
        "--drain-deadline",
        type=float,
        default=30.0,
        metavar="S",
        help="graceful-shutdown budget: seconds in-flight jobs get to "
        "finish after SIGTERM before the process exits anyway",
    )
    fleet = parser.add_argument_group("fleet mode")
    fleet.add_argument(
        "--fleet",
        type=int,
        default=None,
        metavar="N",
        help="serve a local fleet: a coordinator (public port) + N workers "
        "on ephemeral ports, each owning a cache shard by key range",
    )
    fleet.add_argument(
        "--replication",
        type=int,
        default=2,
        metavar="R",
        help="copies of each fresh result across the fleet (owner + R-1 "
        "ring successors; default 2)",
    )
    fleet.add_argument(
        "--fleet-smoke",
        metavar="EXPERIMENT",
        default=None,
        help="fleet self-test: serve EXPERIMENT on a coordinator + worker "
        "fleet, assert byte-identity with a single-daemon run and >=95%% "
        "cache-served on the resubmit, then exit",
    )
    fleet.add_argument(
        "--loadgen",
        action="store_true",
        help="closed-loop load generator: spin up a local fleet, sustain "
        "--loadgen-clients concurrent submissions for --loadgen-duration "
        "seconds, write BENCH_fleet.json",
    )
    fleet.add_argument(
        "--loadgen-clients", type=int, default=1024, metavar="N",
        help="concurrent closed-loop clients (default 1024)",
    )
    fleet.add_argument(
        "--loadgen-processes", type=int, default=8, metavar="N",
        help="generator OS processes the clients are spread over",
    )
    fleet.add_argument(
        "--loadgen-duration", type=float, default=5.0, metavar="S",
        help="seconds of sustained load (default 5)",
    )
    fleet.add_argument(
        "--loadgen-tenants", type=int, default=4, metavar="N",
        help="tenants the clients are spread over (fairness surface)",
    )
    fleet.add_argument(
        "--loadgen-out", default="BENCH_fleet.json", metavar="FILE",
        help="report artifact path (default BENCH_fleet.json)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log requests and cache stats"
    )
    return parser


def _make_app(args):
    import os

    from repro.service.app import ServiceApp

    cache_dir = args.cache_dir or os.environ.get(CACHE_DIR_ENV + "2", ".ksr-cache2")
    backend = args.backend
    if backend is None:
        backend = f"process:{args.jobs}" if args.jobs else "process:2"
    elif args.jobs:
        raise SystemExit("pass --backend or --jobs, not both")
    cap = int(args.cache_cap_mb * 1024 * 1024) if args.cache_cap_mb else None
    return ServiceApp(
        cache_dir,
        backend=backend,
        cap_bytes=cap,
        workers=args.workers,
        queue_cap=args.queue_cap,
        max_points=args.max_points,
        max_batch=args.max_batch,
    )


def post_job(base_url: str, body: dict, *, timeout: float = 600.0) -> dict:
    """Submit one job body and return the decoded JSON response."""
    request = urllib.request.Request(
        f"{base_url}/v1/jobs",
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def run_smoke(args) -> int:
    """The CI self-test (see module docstring)."""
    import threading

    from repro.service.app import make_server

    app = _make_app(args)
    server = make_server(app, args.host, 0, verbose=False)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://{server.server_address[0]}:{server.server_address[1]}"
    body = {"kind": "experiment", "experiment": args.smoke, "wait": True}
    try:
        first = post_job(base, body)
        second = post_job(base, body)
    finally:
        server.shutdown()
        thread.join(timeout=10)
        app.close()
    for name, doc in (("first", first), ("second", second)):
        if doc.get("status") != "done":
            print(f"smoke: {name} submission did not finish: {doc}", file=sys.stderr)
            return 1
    if first["result"]["rendered"] != second["result"]["rendered"]:
        print("smoke: resubmission rendered differently", file=sys.stderr)
        return 1
    stats = second["cache"]
    lookups = stats["hits"] + stats["misses"]
    rate = stats["hits"] / lookups if lookups else 0.0
    print(first["result"]["rendered"])
    print(
        f"smoke {args.smoke}: resubmit {stats['hits']}/{lookups} cache hits "
        f"({rate:.0%}) from {stats['root']}"
    )
    if rate < 0.95:
        print("smoke: resubmit hit rate under 95%", file=sys.stderr)
        return 1
    return 0


def _fleet_cache_root(args) -> str:
    import os

    return args.cache_dir or os.environ.get(CACHE_DIR_ENV + "2", ".ksr-fleet-cache")


def _make_fleet(args, *, n_workers: int | None = None, **overrides):
    """A :class:`LocalFleet` from CLI options (+ keyword overrides)."""
    from repro.service.fleet import LocalFleet

    backend = args.backend
    if backend is None:
        backend = f"process:{args.jobs}" if args.jobs else "inline"
    options = dict(
        n_workers=n_workers or args.fleet or 3,
        backend=backend,
        replication=args.replication,
        queue_cap=args.queue_cap,
        worker_threads=args.workers,
        max_points=args.max_points,
        max_batch=args.max_batch,
    )
    options.update(overrides)
    return LocalFleet(_fleet_cache_root(args), **options)


def run_fleet_smoke(args) -> int:
    """Fleet CI self-test: federated == single daemon, cache-served resubmit.

    One campaign runs three times: once on a plain single-daemon app
    (fresh cache), then twice through a coordinator + worker fleet
    (fresh shards).  The federated result must be byte-identical to the
    single-daemon one, and the fleet resubmission must be >=95%
    cache-served out of the worker shards.
    """
    import tempfile

    from repro.service.app import ServiceApp, make_server

    body = {"kind": "experiment", "experiment": args.fleet_smoke, "wait": True}
    with tempfile.TemporaryDirectory(prefix="ksr-fleet-smoke-") as tmp:
        # -- reference: one daemon, cold cache --------------------------
        app = ServiceApp(f"{tmp}/single", backend="inline", workers=2)
        server = make_server(app, args.host, 0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://{server.server_address[0]}:{server.server_address[1]}"
        try:
            single = post_job(base, body)
        finally:
            server.shutdown()
            thread.join(timeout=10)
            app.close()
        if single.get("status") != "done":
            print(f"fleet-smoke: single-daemon run failed: {single}", file=sys.stderr)
            return 1
        # -- the fleet: coordinator + N workers, cold shards ------------
        n_workers = args.fleet or 3
        args_cache_dir = args.cache_dir
        try:
            args.cache_dir = f"{tmp}/fleet"
            fleet = _make_fleet(args, n_workers=n_workers, backend="inline")
        finally:
            args.cache_dir = args_cache_dir
        try:
            first = post_job(fleet.base_url, body)
            second = post_job(fleet.base_url, body)
            workers_line = ", ".join(
                f"{wid}: {member.app.cache.entry_count()} entries"
                for wid, member in sorted(fleet.workers.items())
            )
        finally:
            fleet.close()
    for name, doc in (("first", first), ("second", second)):
        if doc.get("status") != "done":
            print(f"fleet-smoke: {name} fleet run failed: {doc}", file=sys.stderr)
            return 1
    single_payload = json.dumps(single["result"], sort_keys=True)
    for name, doc in (("first", first), ("second", second)):
        if json.dumps(doc["result"], sort_keys=True) != single_payload:
            print(
                f"fleet-smoke: {name} federated result differs from the "
                f"single-daemon run", file=sys.stderr,
            )
            return 1
    stats = second["cache"]
    lookups = stats["hits"] + stats["misses"]
    rate = stats["hits"] / lookups if lookups else 0.0
    print(second["result"]["rendered"])
    print(f"fleet-smoke {args.fleet_smoke}: {n_workers} workers; shards: {workers_line}")
    print(
        f"fleet-smoke {args.fleet_smoke}: federated output byte-identical to "
        f"single daemon; resubmit {stats['hits']}/{lookups} cache-served "
        f"({rate:.0%}, {stats['remote_hits']} via replicas)"
    )
    if rate < 0.95:
        print("fleet-smoke: resubmit cache-served rate under 95%", file=sys.stderr)
        return 1
    return 0


def run_loadgen_cmd(args) -> int:
    """Spin up a local fleet and drive it with the load generator."""
    import tempfile

    from repro.service.fleet import run_loadgen

    with tempfile.TemporaryDirectory(prefix="ksr-loadgen-fleet-") as tmp:
        args_cache_dir = args.cache_dir
        try:
            args.cache_dir = args.cache_dir or tmp
            # A loadgen fleet needs headroom: deep queue, many executor
            # threads, or the generator only ever measures 429s.
            fleet = _make_fleet(
                args,
                queue_cap=max(args.queue_cap, args.loadgen_clients),
                exec_workers=16,
            )
        finally:
            args.cache_dir = args_cache_dir
        try:
            print(
                f"loadgen: {args.loadgen_clients} clients / "
                f"{args.loadgen_processes} processes for "
                f"{args.loadgen_duration}s against {fleet.base_url} "
                f"({len(fleet.workers)} workers)"
            )
            report = run_loadgen(
                fleet.base_url,
                clients=args.loadgen_clients,
                processes=args.loadgen_processes,
                duration_s=args.loadgen_duration,
                tenants=args.loadgen_tenants,
                out_path=args.loadgen_out,
            )
        finally:
            fleet.close(drain_deadline=args.drain_deadline)
    totals, latency = report["totals"], report["latency_ms"]
    print(
        f"loadgen: {totals['completed']} jobs done "
        f"({totals['throughput_jobs_per_s']}/s), "
        f"{totals['rejected']} rejected, {totals['errors']} errors"
    )
    print(
        f"loadgen: latency p50 {latency['p50']}ms / p90 {latency['p90']}ms / "
        f"p99 {latency['p99']}ms"
    )
    print(
        f"loadgen: cache-served {report['cache']['served_fraction']:.1%}, "
        f"coalesce rate {report['coalesce']['rate']:.1%}, "
        f"fairness (Jain) {report['fairness']['jain_index']}"
    )
    print(f"loadgen: report written to {args.loadgen_out}")
    if totals["completed"] == 0:
        print("loadgen: no job completed", file=sys.stderr)
        return 1
    return 0


def _serve_until_signal(serve_label: str, server, close, deadline: float) -> int:
    """Run ``server`` until SIGTERM/SIGINT, then drain gracefully."""
    stop = threading.Event()

    def on_signal(signum, frame):  # pragma: no cover - signal plumbing
        stop.set()

    try:
        signal.signal(signal.SIGTERM, on_signal)
        signal.signal(signal.SIGINT, on_signal)
    except ValueError:  # pragma: no cover - not the main thread
        pass
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        stop.wait()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    print(f"{serve_label}: draining (deadline {deadline:.0f}s)")
    server.shutdown()
    thread.join(timeout=10)
    stranded = close()
    if stranded:
        print(f"{serve_label}: exited with {stranded} job(s) unfinished",
              file=sys.stderr)
        return 1
    print(f"{serve_label}: clean shutdown")
    return 0


def run_fleet_serve(args) -> int:
    """``ksr-serve --fleet N``: a local fleet behind one coordinator port."""
    from repro.service.app import make_server

    fleet = _make_fleet(args)
    # Re-bind the coordinator onto the requested public port.
    coordinator = fleet.coordinator
    fleet._coord.server.shutdown()
    fleet._coord.server.server_close()
    fleet._coord.thread.join(timeout=10)
    server = make_server(coordinator, args.host, args.port, verbose=args.verbose)
    host, port = server.server_address[0], server.server_address[1]
    print(f"ksr-serve fleet listening on http://{host}:{port}")
    for wid, url in sorted(fleet.worker_urls().items()):
        print(f"  {wid} at {url}")
    print(f"  replication {args.replication}, queue cap {args.queue_cap}")

    def close() -> int:
        stranded = coordinator.close(drain_deadline=args.drain_deadline)
        for member in fleet.workers.values():
            member.stop(drain_deadline=args.drain_deadline)
        return stranded

    return _serve_until_signal("ksr-serve fleet", server, close, args.drain_deadline)


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``ksr-serve``."""
    install_sigpipe_handler()
    args = build_serve_parser().parse_args(argv)
    if args.smoke:
        return run_smoke(args)
    if args.fleet_smoke:
        return run_fleet_smoke(args)
    if args.loadgen:
        return run_loadgen_cmd(args)
    if args.fleet:
        return run_fleet_serve(args)
    from repro.service.app import make_server

    app = _make_app(args)
    server = make_server(app, args.host, args.port, verbose=args.verbose)
    host, port = server.server_address[0], server.server_address[1]
    print(f"ksr-serve listening on http://{host}:{port}")
    print(f"  backend {app.scheduler.backend.name}, "
          f"{app.scheduler.stats()['workers']} workers, "
          f"queue cap {app.scheduler.queue_cap}")
    print(f"  {format_cache_stats(app.cache.stats())}")
    return _serve_until_signal(
        "ksr-serve",
        server,
        lambda: app.close(drain_deadline=args.drain_deadline),
        args.drain_deadline,
    )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
