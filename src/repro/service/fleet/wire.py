"""Fleet wire protocol: how the coordinator and workers talk.

Two channels, both over plain HTTP so the fleet runs in the same bare
container as everything else:

* **JSON** for the control plane (health, stats) — identical to the
  public ``ksr-serve`` API, so a human can curl any fleet member.
* **Pickle** for the data plane (``/v1/fleet/*``) — sweep point calls
  carry values like :class:`~repro.faults.plan.FaultPlan` and results
  carry :class:`~repro.obs.probes.ObsCapture`; pickling them preserves
  the byte-identity contract (the federated payload is assembled from
  the *same objects* a single daemon would produce).

Functions are never pickled: a map request names its point function as
``module.qualname`` and the worker re-imports it, restricted to the
``repro.`` package — the same identity :func:`repro.experiments.sweep.
point_key` hashes, so routing and caching agree on what a function
*is*.

Trust model: once the fleet leaves the trusted loopback segment every
fleet control/data-plane call carries a shared-secret token
(``X-Fleet-Token``, compared constant-time by :class:`FleetAuth`).
The pickle endpoints are for authenticated fleet peers, not untrusted
clients — the same stance the process-pool backend already takes with
its pickled IPC — and the auth seam is pluggable so a TLS-terminating
proxy can sit in front (hand it a :class:`FleetAuth` with no secret
and let the proxy enforce identity instead).
"""

from __future__ import annotations

import hmac
import importlib
import io
import json
import pickle
import secrets
import urllib.error
import urllib.request
from typing import Any, Callable

__all__ = [
    "WireError",
    "FleetAuth",
    "FLEET_TOKEN_HEADER",
    "FLEET_TOKEN_ENV",
    "PICKLE_CONTENT_TYPE",
    "dump_payload",
    "load_payload",
    "get_json",
    "get_pickle",
    "post_json",
    "post_pickle",
    "resolve_point_func",
]

#: Content type marking a pickled fleet-internal payload.
PICKLE_CONTENT_TYPE = "application/x-ksr-fleet-pickle"

#: Header carrying the fleet shared secret on every fleet call.
FLEET_TOKEN_HEADER = "X-Fleet-Token"

#: Environment variable ``ksr-serve`` reads the secret from, so it
#: never appears in ``ps`` output the way an argv flag would.
FLEET_TOKEN_ENV = "KSR_FLEET_TOKEN"


class FleetAuth:
    """Shared-secret authentication for fleet control/data-plane calls.

    One instance is shared by everything on one side of a connection:
    clients attach :meth:`headers` to outgoing fleet requests, servers
    :meth:`verify` the presented token with a constant-time compare
    (``hmac.compare_digest`` — a timing oracle on the token would
    defeat the point of having one).

    ``secret=None`` disables enforcement — the seam for deployments
    that terminate TLS (with client certs or a proxy-enforced identity)
    in front of the fleet, and for the pre-multi-host loopback mode.
    """

    def __init__(self, secret: str | None = None):
        self.secret = secret

    @classmethod
    def generate(cls) -> "FleetAuth":
        """A fresh random token (one-process fleets mint their own)."""
        return cls(secrets.token_hex(16))

    @property
    def enabled(self) -> bool:
        return self.secret is not None

    def headers(self) -> dict[str, str]:
        """Headers a fleet client attaches to an outgoing call."""
        if self.secret is None:
            return {}
        return {FLEET_TOKEN_HEADER: self.secret}

    def verify(self, presented: str | None) -> bool:
        """Constant-time check of one presented token value."""
        if self.secret is None:
            return True
        if not presented:
            return False
        return hmac.compare_digest(self.secret.encode("utf-8"),
                                   presented.encode("utf-8"))

#: Only functions inside the installed package may be named in a map
#: request; anything else is refused before import.
ALLOWED_FUNC_PREFIX = "repro."


class WireError(RuntimeError):
    """A fleet peer could not be reached or answered malformed data.

    The coordinator treats this as *worker failure*, not job failure:
    the batch is re-routed to the surviving replica set.
    """

    def __init__(self, message: str, *, status: int | None = None):
        super().__init__(message)
        self.status = status


def dump_payload(obj: Any) -> bytes:
    """Pickle one fleet payload (highest protocol, like the caches)."""
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def load_payload(data: bytes) -> Any:
    """Unpickle one fleet payload; malformed bytes raise WireError."""
    try:
        return pickle.loads(data)
    except Exception as exc:  # noqa: BLE001 - anything unpicklable is a peer fault
        raise WireError(f"malformed fleet payload: {type(exc).__name__}: {exc}") from exc


def _request(url: str, *, data: bytes | None, headers: dict[str, str],
             method: str, timeout: float) -> tuple[int, bytes]:
    request = urllib.request.Request(url, data=data, headers=headers, method=method)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as exc:
        # An HTTP status is still an *answer*; read the body so callers
        # can distinguish "peer said no" from "peer is gone".
        body = exc.read() if exc.fp is not None else b""
        return exc.code, body
    except (urllib.error.URLError, OSError, io.UnsupportedOperation) as exc:
        raise WireError(f"{method} {url}: {exc}") from exc


def _auth_headers(auth: "FleetAuth | None") -> dict[str, str]:
    return auth.headers() if auth is not None else {}


def get_json(
    url: str, *, timeout: float = 10.0, auth: "FleetAuth | None" = None
) -> tuple[int, dict[str, Any]]:
    """GET a JSON document; ``(status, doc)``.  Unreachable → WireError."""
    status, body = _request(url, data=None, headers=_auth_headers(auth),
                            method="GET", timeout=timeout)
    try:
        doc = json.loads(body) if body else {}
    except json.JSONDecodeError as exc:
        raise WireError(f"GET {url}: non-JSON response") from exc
    if not isinstance(doc, dict):
        raise WireError(f"GET {url}: expected a JSON object")
    return status, doc


def post_json(
    url: str, doc: dict[str, Any], *, timeout: float = 10.0,
    auth: "FleetAuth | None" = None,
) -> tuple[int, dict[str, Any]]:
    """POST a JSON document, return ``(status, json_response)``.

    The control-plane counterpart of :func:`post_pickle` — worker
    registration goes over this channel so a human can drive it with
    curl too.
    """
    payload = json.dumps(doc, sort_keys=True).encode("utf-8")
    headers = {"Content-Type": "application/json",
               "Content-Length": str(len(payload)),
               **_auth_headers(auth)}
    status, body = _request(url, data=payload, headers=headers,
                            method="POST", timeout=timeout)
    try:
        out = json.loads(body) if body else {}
    except json.JSONDecodeError as exc:
        raise WireError(f"POST {url}: non-JSON response") from exc
    if not isinstance(out, dict):
        raise WireError(f"POST {url}: expected a JSON object")
    return status, out


def post_pickle(
    url: str, obj: Any, *, timeout: float = 600.0,
    auth: "FleetAuth | None" = None,
) -> tuple[int, Any]:
    """POST a pickled payload, return ``(status, unpickled_response)``.

    A non-2xx status with a JSON body comes back as ``(status, doc)``;
    an unreachable peer raises :class:`WireError`.
    """
    payload = dump_payload(obj)
    status, body = _request(
        url,
        data=payload,
        headers={"Content-Type": PICKLE_CONTENT_TYPE,
                 "Content-Length": str(len(payload)),
                 **_auth_headers(auth)},
        method="POST",
        timeout=timeout,
    )
    if status >= 400:
        try:
            return status, json.loads(body) if body else {}
        except json.JSONDecodeError:
            return status, {"error": body.decode("utf-8", "replace")}
    return status, load_payload(body)


def get_pickle(
    url: str, *, timeout: float = 30.0, auth: "FleetAuth | None" = None
) -> tuple[int, Any]:
    """GET a pickled payload; 404 returns ``(404, None)`` (a clean miss)."""
    status, body = _request(url, data=None, headers=_auth_headers(auth),
                            method="GET", timeout=timeout)
    if status == 404:
        return status, None
    if status >= 400:
        raise WireError(f"GET {url}: HTTP {status}", status=status)
    return status, load_payload(body)


def resolve_point_func(func_id: str) -> Callable[..., Any]:
    """Import ``module.qualname`` back into a callable, allowlisted.

    The id is the exact string ``point_key`` hashes, so a worker
    computing a routed call produces the same cache key the coordinator
    routed on.
    """
    module_name, _, qualname = func_id.rpartition(".")
    if not module_name.startswith(ALLOWED_FUNC_PREFIX):
        raise WireError(
            f"refusing to resolve {func_id!r}: point functions must live "
            f"under {ALLOWED_FUNC_PREFIX}*"
        )
    try:
        module = importlib.import_module(module_name)
        func = module
        for part in qualname.split("."):
            func = getattr(func, part)
    except (ImportError, AttributeError) as exc:
        raise WireError(f"cannot resolve point function {func_id!r}: {exc}") from exc
    if not callable(func):
        raise WireError(f"{func_id!r} is not callable")
    return func  # type: ignore[return-value]
