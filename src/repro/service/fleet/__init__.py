"""Federated ``ksr-serve``: coordinator + worker fleet.

The single-daemon serving layer makes one experiment point a pure,
cached function behind one HTTP process; this package scales that
abstraction the way the KSR-1 scales a cell's memory — by making many
workers look like one coherent resource:

* :mod:`~repro.service.fleet.ring` — consistent-hash ring (virtual
  nodes) mapping each ``point_key`` to its owning worker.
* :mod:`~repro.service.fleet.wire` — the fleet wire protocol (JSON
  control plane, pickled data plane, allowlisted function identity).
* :mod:`~repro.service.fleet.quotas` — per-tenant token buckets and
  stride-scheduled weighted fair share.
* :mod:`~repro.service.fleet.worker` — a ``ServiceApp`` owning one
  cache shard, with cross-worker read-through and async replication.
* :mod:`~repro.service.fleet.coordinator` — admission, routing,
  heartbeat/health, key-range handoff on worker death.
* :mod:`~repro.service.fleet.local` — a one-process fleet harness on
  real loopback sockets (tests, ``--fleet``, smoke, loadgen).
* :mod:`~repro.service.fleet.loadgen` — the closed-loop multi-process
  load generator behind ``ksr-serve --loadgen``.

The invariant the whole package leans on is the same one the cache
leans on: every sweep point is a pure function of its arguments, so
*where* a point computes — which worker, before or after a handoff,
from a replica or fresh — can never change *what* it computes.  A
federated campaign is byte-identical to a single-daemon run.
"""

from repro.service.fleet.coordinator import (
    CoordinatorApp,
    FleetClient,
    FleetScheduler,
    FleetSweepRunner,
    WorkerHandle,
    make_coordinator_server,
)
from repro.service.fleet.loadgen import run_loadgen
from repro.service.fleet.local import LocalFleet
from repro.service.fleet.quotas import (
    DEFAULT_TENANT,
    FairShareQueue,
    TenantPolicy,
    TokenBucket,
)
from repro.service.fleet.ring import HashRing
from repro.service.fleet.wire import FleetAuth, WireError
from repro.service.fleet.worker import (
    FleetWorkerApp,
    Registrar,
    make_worker_server,
)

__all__ = [
    "CoordinatorApp",
    "DEFAULT_TENANT",
    "FairShareQueue",
    "FleetAuth",
    "FleetClient",
    "FleetScheduler",
    "FleetSweepRunner",
    "FleetWorkerApp",
    "HashRing",
    "LocalFleet",
    "Registrar",
    "TenantPolicy",
    "TokenBucket",
    "WireError",
    "WorkerHandle",
    "make_coordinator_server",
    "make_worker_server",
    "run_loadgen",
]
