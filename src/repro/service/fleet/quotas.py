"""Per-tenant admission: token-bucket quotas + weighted fair-share.

The single-daemon scheduler already prices jobs (413) and bounds its
queue (429); a fleet serving many tenants needs two more properties:

* **Isolation** — one tenant's submission storm must not consume the
  whole queue.  :class:`TokenBucket` rate-limits each tenant's
  *admissions* (jobs/second with a burst allowance); a refusal carries
  the exact time until the next token, which becomes the HTTP
  ``Retry-After``.
* **Weighted fairness** — among admitted jobs, dequeue order follows
  tenant weights, not arrival order.  :class:`FairShareQueue` runs
  stride scheduling: each tenant advances a virtual-time *pass* by
  ``1/weight`` per dequeue, and the lowest pass runs next.  A tenant
  idle for a while re-enters at the current virtual time instead of
  banking credit (no starvation of the tenants that kept the queue
  warm).  Stride scheduling is deterministic — same arrival order,
  same dequeue order — which keeps fleet tests exact.

Wall-clock use is deliberate and harness-side only (this is admission
policy, not simulation); the clock is injectable for tests.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterator

__all__ = ["TenantPolicy", "TokenBucket", "FairShareQueue", "DEFAULT_TENANT"]

#: Tenant attributed to requests that do not name one.
DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class TenantPolicy:
    """Admission policy for one tenant (or the default for unknowns)."""

    #: Fair-share weight: a weight-2 tenant drains twice as fast as a
    #: weight-1 tenant under contention.
    weight: float = 1.0
    #: Sustained admissions per second; ``None`` = unlimited.
    rate: float | None = None
    #: Burst allowance above the sustained rate.
    burst: int = 8

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")
        if self.rate is not None and self.rate <= 0:
            raise ValueError(f"rate must be positive or None, got {self.rate}")
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")


class TokenBucket:
    """Classic token bucket; refused takes report the wait for a token."""

    def __init__(self, rate: float, burst: int, *,
                 clock: Callable[[], float] = time.monotonic):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock()
        self._lock = threading.Lock()

    def try_take(self) -> tuple[bool, float]:
        """Take one token; ``(ok, retry_after_seconds)``."""
        with self._lock:
            now = self._clock()
            self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
            self._last = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True, 0.0
            return False, (1.0 - self._tokens) / self.rate


class FairShareQueue:
    """Stride-scheduled multi-tenant queue (blocking pop, closeable).

    ``push`` never blocks (admission bounds live above this layer);
    ``pop`` blocks until an item is available or the queue is closed.
    """

    #: Stride numerator; any constant works, a large one keeps passes
    #: well-separated for fractional weights.
    STRIDE_SCALE = 1 << 20

    def __init__(self, policy_for: Callable[[str], TenantPolicy] | None = None):
        self._policy_for = policy_for or (lambda tenant: TenantPolicy())
        self._cond = threading.Condition()
        self._queues: dict[str, deque[Any]] = {}
        self._pass: dict[str, float] = {}
        self._global_pass = 0.0
        self._closed = False
        self.pushed: dict[str, int] = {}
        self.popped: dict[str, int] = {}

    def _stride(self, tenant: str) -> float:
        return self.STRIDE_SCALE / self._policy_for(tenant).weight

    def push(self, tenant: str, item: Any) -> None:
        """Enqueue ``item`` for ``tenant`` and wake one popper."""
        with self._cond:
            if self._closed:
                raise RuntimeError("FairShareQueue is closed")
            queue = self._queues.get(tenant)
            if queue is None:
                queue = self._queues[tenant] = deque()
            if not queue:
                # An idle tenant re-enters at current virtual time: it
                # competes fairly from now on, it does not cash in the
                # idle period as burst credit.
                self._pass[tenant] = max(self._pass.get(tenant, 0.0), self._global_pass)
            queue.append(item)
            self.pushed[tenant] = self.pushed.get(tenant, 0) + 1
            self._cond.notify()

    def pop(self, timeout: float | None = None) -> tuple[str, Any] | None:
        """Dequeue from the lowest-pass non-empty tenant; None if closed/timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                ready = [t for t, q in self._queues.items() if q]
                if ready:
                    tenant = min(ready, key=lambda t: (self._pass.get(t, 0.0), t))
                    item = self._queues[tenant].popleft()
                    new_pass = self._pass.get(tenant, 0.0) + self._stride(tenant)
                    self._pass[tenant] = new_pass
                    self._global_pass = max(self._global_pass, new_pass)
                    self.popped[tenant] = self.popped.get(tenant, 0) + 1
                    return tenant, item
                if self._closed:
                    return None
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return None
                self._cond.wait(remaining)

    def close(self) -> None:
        """Wake all poppers; subsequent pops drain the backlog then None."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def depth(self) -> int:
        """Total queued items across tenants."""
        with self._cond:
            return sum(len(q) for q in self._queues.values())

    def depths(self) -> dict[str, int]:
        """Per-tenant queued items (non-empty tenants only)."""
        with self._cond:
            return {t: len(q) for t, q in self._queues.items() if q}

    def drain(self) -> Iterator[tuple[str, Any]]:
        """Pop everything currently queued without blocking (shutdown path)."""
        while True:
            with self._cond:
                ready = [t for t, q in self._queues.items() if q]
                if not ready:
                    return
            item = self.pop(timeout=0)
            if item is None:
                return
            yield item
