"""Closed-loop multi-process load generator for the serving fleet.

``ksr-serve --loadgen`` answers the capacity question the paper asks
of the KSR-1 — *what happens as you add load?* — at the serving-fleet
level.  It spins up ``processes`` OS processes, each running
``clients/processes`` closed-loop client threads; every client keeps
exactly one job submission in flight against the coordinator (POST
``wait: true``), so ``clients`` is the sustained concurrency, not a
fire-and-forget burst.  Clients draw small ``point`` jobs from a tiny
parameter space: the first wave computes, everything after is served
from worker shards or coalesced in the coordinator's job table — the
same cache/coalescing economics a production fleet would show.

The run reports, into a ``BENCH_fleet.json`` artifact:

* throughput (completed jobs/s) and latency percentiles (p50/p90/p99),
* the cache-served fraction (hits over hits+computed, summed over
  every job's own fleet accounting),
* the coalesce rate at the coordinator,
* per-tenant completion shares and Jain's fairness index over
  weight-normalised throughput.

Latency/throughput numbers are wall-clock and machine-dependent (this
is a harness artifact like ``BENCH_engine.json``, not a golden value);
the cache/coalesce/fairness fractions are the stable, assertable part.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import tempfile
import threading
import time
import urllib.error
import urllib.request
from typing import Any

__all__ = ["run_loadgen", "jain_index", "percentile"]


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already sorted list (0 if empty)."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, max(0, int(q * len(sorted_values))))
    return sorted_values[rank]


def jain_index(values: list[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly fair, 1/n = one hog."""
    if not values:
        return 1.0
    square_of_sum = sum(values) ** 2
    sum_of_squares = sum(v * v for v in values)
    if sum_of_squares == 0:
        return 1.0
    return square_of_sum / (len(values) * sum_of_squares)


def _post_json(base_url: str, body: dict[str, Any], timeout: float) -> tuple[int, dict]:
    request = urllib.request.Request(
        f"{base_url}/v1/jobs",
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        try:
            return exc.code, json.loads(exc.read())
        except (ValueError, OSError):
            return exc.code, {}


def _get_json(base_url: str, path: str, timeout: float = 30.0) -> dict:
    with urllib.request.urlopen(base_url + path, timeout=timeout) as response:
        return json.loads(response.read())


def _client_loop(base_url: str, tenant: str, thread_index: int,
                 cfg: dict[str, Any], deadline: float,
                 sink: dict[str, Any], lock: threading.Lock) -> None:
    """One closed-loop client: submit, wait, record, repeat."""
    seeds = cfg["spec_seeds"]
    iteration = 0
    while time.monotonic() < deadline:
        seed = seeds[(thread_index + iteration) % len(seeds)]
        iteration += 1
        body = {
            "kind": "point",
            "params": {"ops": cfg["ops"], "n_procs": cfg["n_procs"], "seed": seed},
            "tenant": tenant,
            "wait": True,
            "timeout": cfg["timeout"],
        }
        start = time.monotonic()
        try:
            status, doc = _post_json(base_url, body, timeout=cfg["timeout"] + 30)
        except (urllib.error.URLError, OSError):
            with lock:
                sink["errors"] += 1
            time.sleep(0.05)
            continue
        elapsed = time.monotonic() - start
        with lock:
            if status == 200 and doc.get("status") == "done":
                sink["completed"] += 1
                sink["per_tenant"][tenant] = sink["per_tenant"].get(tenant, 0) + 1
                sink["latencies"].append(elapsed)
                cache = doc.get("cache", {})
                sink["hits"] += int(cache.get("hits", 0))
                sink["misses"] += int(cache.get("misses", 0))
            elif status == 429:
                sink["rejected"] += 1
                retry_after = float(doc.get("retry_after", 0.1) or 0.1)
            elif status == 503:
                sink["rejected"] += 1
            else:
                sink["errors"] += 1
        if status == 429:
            time.sleep(min(retry_after, 0.25))
        elif status == 503:
            time.sleep(0.1)


def _loadgen_process(base_url: str, cfg: dict[str, Any], proc_index: int,
                     out_path: str) -> None:
    """One generator process: fan out client threads, write a JSON shard."""
    deadline = time.monotonic() + cfg["duration_s"]
    sink: dict[str, Any] = {
        "completed": 0, "rejected": 0, "errors": 0,
        "hits": 0, "misses": 0,
        "latencies": [], "per_tenant": {},
    }
    lock = threading.Lock()
    tenants = cfg["tenants"]
    threads = []
    for t in range(cfg["clients_per_process"]):
        global_index = proc_index * cfg["clients_per_process"] + t
        tenant = tenants[global_index % len(tenants)]
        thread = threading.Thread(
            target=_client_loop,
            args=(base_url, tenant, global_index, cfg, deadline, sink, lock),
            daemon=True,
        )
        threads.append(thread)
        thread.start()
    for thread in threads:
        thread.join(timeout=cfg["duration_s"] + cfg["timeout"] + 60)
    sink["latencies"].sort()
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(sink, fh)


def run_loadgen(
    base_url: str,
    *,
    clients: int = 1024,
    processes: int = 8,
    duration_s: float = 5.0,
    tenants: int = 4,
    spec_space: int = 16,
    ops: int = 2,
    n_procs: int = 2,
    timeout: float = 120.0,
    out_path: str = "BENCH_fleet.json",
) -> dict[str, Any]:
    """Drive ``base_url`` with ``clients`` closed-loop clients; report.

    Returns the report dict and writes it to ``out_path``.  ``clients``
    is split evenly over ``processes`` OS processes so the generator
    itself never bottlenecks on one GIL.
    """
    if clients < 1 or processes < 1 or clients < processes:
        raise ValueError(f"need clients >= processes >= 1, got {clients}/{processes}")
    cfg = {
        "clients_per_process": clients // processes,
        "duration_s": duration_s,
        "tenants": [f"tenant-{i}" for i in range(max(1, tenants))],
        "spec_seeds": [1000 + i for i in range(max(1, spec_space))],
        "ops": ops,
        "n_procs": n_procs,
        "timeout": timeout,
    }
    effective_clients = cfg["clients_per_process"] * processes
    before = _get_json(base_url, "/v1/stats")
    started = time.monotonic()
    context = multiprocessing.get_context("spawn")
    with tempfile.TemporaryDirectory(prefix="ksr-loadgen-") as tmp:
        shards = [os.path.join(tmp, f"shard-{i}.json") for i in range(processes)]
        procs = [
            context.Process(
                target=_loadgen_process, args=(base_url, cfg, i, shards[i]),
                daemon=True,
            )
            for i in range(processes)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=duration_s + timeout + 120)
            if proc.is_alive():  # pragma: no cover - hung generator
                proc.terminate()
        merged: dict[str, Any] = {
            "completed": 0, "rejected": 0, "errors": 0,
            "hits": 0, "misses": 0, "latencies": [], "per_tenant": {},
        }
        for shard in shards:
            try:
                with open(shard, encoding="utf-8") as fh:
                    part = json.load(fh)
            except (OSError, json.JSONDecodeError):  # pragma: no cover
                continue
            for key in ("completed", "rejected", "errors", "hits", "misses"):
                merged[key] += part[key]
            merged["latencies"].extend(part["latencies"])
            for tenant, count in part["per_tenant"].items():
                merged["per_tenant"][tenant] = (
                    merged["per_tenant"].get(tenant, 0) + count
                )
    elapsed = time.monotonic() - started
    after = _get_json(base_url, "/v1/stats")
    latencies = sorted(merged["latencies"])
    lookups = merged["hits"] + merged["misses"]
    submitted_delta = (
        after["scheduler"]["submitted"] - before["scheduler"]["submitted"]
    )
    coalesced_delta = (
        after["scheduler"]["coalesced"] - before["scheduler"]["coalesced"]
    )
    per_tenant = {
        tenant: {
            "completed": count,
            "jobs_per_s": round(count / elapsed, 3) if elapsed else 0.0,
            "share": round(count / merged["completed"], 4)
            if merged["completed"] else 0.0,
        }
        for tenant, count in sorted(merged["per_tenant"].items())
    }
    report = {
        "benchmark": "fleet-loadgen",
        "config": {
            "clients": effective_clients,
            "processes": processes,
            "duration_s": duration_s,
            "tenants": len(cfg["tenants"]),
            "spec_space": len(cfg["spec_seeds"]),
            "ops": ops,
            "n_procs": n_procs,
        },
        "elapsed_s": round(elapsed, 3),
        "totals": {
            "completed": merged["completed"],
            "rejected": merged["rejected"],
            "errors": merged["errors"],
            "throughput_jobs_per_s": round(merged["completed"] / elapsed, 2)
            if elapsed else 0.0,
        },
        "latency_ms": {
            "p50": round(percentile(latencies, 0.50) * 1000, 2),
            "p90": round(percentile(latencies, 0.90) * 1000, 2),
            "p99": round(percentile(latencies, 0.99) * 1000, 2),
            "max": round(latencies[-1] * 1000, 2) if latencies else 0.0,
            "mean": round(sum(latencies) / len(latencies) * 1000, 2)
            if latencies else 0.0,
        },
        "cache": {
            "hits": merged["hits"],
            "misses": merged["misses"],
            "served_fraction": round(merged["hits"] / lookups, 4) if lookups else 0.0,
        },
        "coalesce": {
            "submitted": submitted_delta,
            "coalesced": coalesced_delta,
            "rate": round(coalesced_delta / submitted_delta, 4)
            if submitted_delta else 0.0,
        },
        "tenants": per_tenant,
        "fairness": {
            "jain_index": round(
                jain_index([float(c) for c in merged["per_tenant"].values()]), 4
            ),
        },
        "fleet": after.get("fleet", {}),
    }
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return report
