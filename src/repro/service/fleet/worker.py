"""Fleet worker: a ``ksr-serve`` daemon that owns a cache shard.

A worker is the full single-daemon stack (:class:`ServiceApp`:
scheduler, backend, sharded cache, public HTTP API) plus three
fleet-internal endpoints the coordinator and peers use::

    POST /v1/fleet/map          execute a routed batch of sweep points
    GET  /v1/fleet/entry/<key>  serve one cache entry to a peer (pickle)
    POST /v1/fleet/entry        adopt one replicated entry from a peer

The coordinator routes each point to the worker owning its
``point_key``; the worker resolves the batch exactly the way a single
daemon would (cache check → compute on its backend → store), with two
fleet twists layered on the same seams:

* **Cross-worker read-through** — the shard cache's ``remote_fetch``
  seam asks the worker's current replica peers for a missing key
  before computing it.  After a key-range handoff (a peer died and the
  ring reassigned its range here), the new owner pulls warm entries
  instead of recomputing the range.  Peers answer from
  :meth:`ShardedResultCache.peek` — local disk only — so two workers
  missing the same key can never ping-pong.
* **Asynchronous replication** — every point this worker *computed*
  (a genuine miss) is pushed, off the request path, to its replica
  peers.  Replication is an availability warm-up, never a correctness
  mechanism: every value is a pure function of its arguments, so a
  lost replica costs a recompute, not an answer.

Per-request accounting is exact and deterministic: the map response
reports how many of its points were served from this shard, pulled
from peers, or computed fresh — the numbers the fleet smoke test's
≥95%-cache-served assertion sums.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.experiments.sweep import point_key
from repro.service.app import ServiceApp, _Handler, version_info
from repro.service.backends import BackendSweepRunner
from repro.service.fleet import wire

__all__ = ["FleetWorkerApp", "Registrar", "make_worker_server"]


class FleetWorkerApp(ServiceApp):
    """A :class:`ServiceApp` extended with the fleet data plane."""

    def __init__(
        self,
        cache_dir: str,
        *,
        worker_id: str,
        backend: str = "inline",
        cap_bytes: int | None = None,
        workers: int = 2,
        queue_cap: int = 8,
        max_points: int = 512,
        max_batch: int = 64,
        peer_timeout: float = 10.0,
        auth: wire.FleetAuth | None = None,
    ):
        super().__init__(
            cache_dir,
            backend=backend,
            cap_bytes=cap_bytes,
            workers=workers,
            queue_cap=queue_cap,
            max_points=max_points,
            max_batch=max_batch,
        )
        self.worker_id = worker_id
        self.peer_timeout = peer_timeout
        #: Shared-secret gate on every ``/v1/fleet/*`` endpoint, and the
        #: credential attached to outgoing peer calls (read-through,
        #: replication, repair pushes all cross worker boundaries).
        self.auth = auth or wire.FleetAuth(None)
        self.repairs_served = 0
        #: Replica peer base URLs, refreshed by every map request (the
        #: coordinator owns ring membership; workers just follow).
        self.peers: list[str] = []
        self._peers_lock = threading.Lock()
        self._replication_threads: list[threading.Thread] = []
        self.replicated_out = 0
        self.replicated_in = 0
        self.maps_served = 0
        self.cache.remote_fetch = self._read_through

    # -- read-through (the cache2 seam) --------------------------------

    def _read_through(self, key: str) -> tuple[bool, Any]:
        """Ask replica peers for ``key``; first peer with the entry wins."""
        with self._peers_lock:
            peers = list(self.peers)
        for peer in peers:
            try:
                status, entry = wire.get_pickle(
                    f"{peer}/v1/fleet/entry/{key}",
                    timeout=self.peer_timeout, auth=self.auth,
                )
            except wire.WireError:
                continue  # dead peer: the next replica may still answer
            if status == 200 and isinstance(entry, dict) and "value" in entry:
                return True, entry["value"]
        return False, None

    # -- replication ---------------------------------------------------

    def _replicate(self, keys: list[str], peers: list[str]) -> None:
        for key in keys:
            hit, value, meta = self.cache.peek(key)
            if not hit:
                continue  # evicted between compute and replication
            body = {"key": key, "value": value, "meta": meta}
            for peer in peers:
                try:
                    status, _ = wire.post_pickle(
                        f"{peer}/v1/fleet/entry", body,
                        timeout=self.peer_timeout, auth=self.auth,
                    )
                except wire.WireError:
                    continue  # availability optimisation only
                if status == 200:
                    self.replicated_out += 1

    def _replicate_async(self, keys: list[str], peers: list[str]) -> None:
        if not keys or not peers:
            return
        thread = threading.Thread(
            target=self._replicate, args=(keys, peers), daemon=True,
            name=f"{self.worker_id}-replicate",
        )
        # Prune finished pushes first: a freshly created thread is not
        # alive until start(), so pruning after the append would drop it
        # and join_replication could miss an in-flight push.
        self._replication_threads = [t for t in self._replication_threads if t.is_alive()]
        self._replication_threads.append(thread)
        thread.start()

    def join_replication(self, timeout: float = 10.0) -> None:
        """Wait for in-flight replication pushes (tests + drain)."""
        for thread in list(self._replication_threads):
            thread.join(timeout=timeout)

    # -- fleet request handling ---------------------------------------

    def handle_fleet_map(self, body: dict[str, Any]) -> dict[str, Any]:
        """Execute one routed batch: ``{func, calls, peers, replicas}``.

        Returns ``{values, keys, stats}`` with values aligned to calls.
        """
        func = wire.resolve_point_func(body["func"])
        calls: list[dict[str, Any]] = body["calls"]
        peers: list[str] = list(body.get("peers", []))
        replica_peers: list[str] = list(body.get("replicas", peers))
        with self._peers_lock:
            self.peers = peers
        keys = [point_key(func, kwargs) for kwargs in calls]
        present_before = {key for key in keys if self.cache.contains(key)}
        remote_before = self.cache.remote_hits
        runner = BackendSweepRunner(
            self.scheduler.backend,
            cache=self.cache,
            max_batch=self.scheduler.max_batch,
        )
        with self.cache.pin_session():
            values = runner.map(func, calls)
        remote_served = self.cache.remote_hits - remote_before
        fresh = [
            key
            for key in dict.fromkeys(keys)  # de-dup, keep order
            if key not in present_before and self.cache.contains(key)
        ]
        # Keys adopted via read-through are "fresh" here too; pushing
        # them onward is an idempotent store, so no need to tell apart.
        computed = max(0, len(fresh) - remote_served)
        self._replicate_async(fresh, replica_peers)
        self.maps_served += 1
        return {
            "worker_id": self.worker_id,
            "values": values,
            "keys": keys,
            "stats": {
                "points": len(calls),
                "local_hits": len([k for k in keys if k in present_before]),
                "remote_hits": remote_served,
                "computed": computed,
            },
        }

    def handle_fleet_entry_get(self, key: str) -> tuple[int, dict[str, Any] | None]:
        """Serve one entry to a peer; ``(200, entry)`` or ``(404, None)``."""
        hit, value, meta = self.cache.peek(key)
        if not hit:
            return 404, None
        return 200, {"key": key, "value": value, "meta": meta}

    def handle_fleet_entry_put(self, body: dict[str, Any]) -> dict[str, Any]:
        """Adopt one replicated entry pushed by a peer."""
        key, value = body["key"], body["value"]
        meta = dict(body.get("meta") or {})
        meta.setdefault("origin", "replica")
        if not self.cache.contains(key):
            self.cache.store(key, value, meta=meta)
            self.replicated_in += 1
        return {"ok": True, "worker_id": self.worker_id}

    def handle_fleet_keys(self) -> dict[str, Any]:
        """This shard's resident key list (the repair planner's census)."""
        keys = self.cache.keys()
        return {
            "worker_id": self.worker_id,
            "keys": keys,
            "count": len(keys),
            "fingerprint": self.cache.fingerprint(),
        }

    def handle_fleet_repair(self, body: dict[str, Any]) -> dict[str, Any]:
        """Push requested entries to peers (coordinator-driven repair).

        ``{"pushes": [{"key": ..., "peers": [url, ...]}, ...]}`` — the
        coordinator names exactly which of this shard's entries are
        missing where; the push is synchronous (the coordinator's
        repair round wants to know the factor *is* restored, not that
        a thread was spawned) and idempotent at the receiver.
        """
        pushed = missing = 0
        for item in body.get("pushes", ()):
            key, peers = item["key"], list(item["peers"])
            hit, value, meta = self.cache.peek(key)
            if not hit:
                missing += 1  # evicted since the census; next round re-plans
                continue
            entry = {"key": key, "value": value, "meta": meta}
            for peer in peers:
                try:
                    status, _ = wire.post_pickle(
                        f"{peer}/v1/fleet/entry", entry,
                        timeout=self.peer_timeout, auth=self.auth,
                    )
                except wire.WireError:
                    continue
                if status == 200:
                    pushed += 1
                    self.replicated_out += 1
        self.repairs_served += 1
        return {
            "ok": True,
            "worker_id": self.worker_id,
            "pushed": pushed,
            "missing": missing,
        }

    # -- status surfaces ----------------------------------------------

    def fleet_stats(self) -> dict[str, Any]:
        """Fleet-specific counters folded into ``/v1/stats``."""
        return {
            "worker_id": self.worker_id,
            "maps_served": self.maps_served,
            "replicated_out": self.replicated_out,
            "replicated_in": self.replicated_in,
            "repairs_served": self.repairs_served,
            "peers": list(self.peers),
            "auth": self.auth.enabled,
        }

    def handle_get(self, path: str) -> tuple[int, dict[str, Any]]:
        """Public GET surface, with fleet counters folded in."""
        status, doc = super().handle_get(path)
        if path in ("/healthz", "/v1/stats") and status == 200:
            doc["fleet"] = self.fleet_stats()
        return status, doc

    def close(self, *, drain_deadline: float = 30.0) -> int:
        """Graceful shutdown; lets replication pushes land first."""
        self.join_replication(timeout=min(5.0, drain_deadline))
        return super().close(drain_deadline=drain_deadline)


class _WorkerHandler(_Handler):
    """The public JSON API plus the pickle data plane."""

    app: FleetWorkerApp

    def _reply_pickle(self, status: int, obj: Any) -> None:
        payload = wire.dump_payload(obj)
        self.send_response(status)
        self.send_header("Content-Type", wire.PICKLE_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _read_pickle_body(self) -> Any:
        length = int(self.headers.get("Content-Length", "0"))
        return wire.load_payload(self.rfile.read(length))

    def _fleet_authorized(self) -> bool:
        presented = self.headers.get(wire.FLEET_TOKEN_HEADER)
        if self.app.auth.verify(presented):
            return True
        self._reply(401, {"error": "missing or invalid fleet token"})
        return False

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path.startswith("/v1/fleet/"):
            if not self._fleet_authorized():
                return
            if self.path.startswith("/v1/fleet/entry/"):
                key = self.path.removeprefix("/v1/fleet/entry/")
                status, entry = self.app.handle_fleet_entry_get(key)
                if entry is None:
                    self._reply(status, {"error": "no such entry"})
                else:
                    self._reply_pickle(status, entry)
                return
            if self.path == "/v1/fleet/keys":
                self._reply(200, self.app.handle_fleet_keys())
                return
            self._reply(404, {"error": f"no such endpoint {self.path!r}"})
            return
        super().do_GET()

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path in ("/v1/fleet/map", "/v1/fleet/entry", "/v1/fleet/repair"):
            if not self._fleet_authorized():
                return
            try:
                body = self._read_pickle_body()
            except (wire.WireError, ValueError):
                self._reply(400, {"error": "malformed fleet payload"})
                return
            if self.app.closing and self.path == "/v1/fleet/map":
                self._reply(
                    503,
                    {"error": "worker is draining"},
                    {"Retry-After": str(self.app.drain_retry_after())},
                )
                return
            try:
                if self.path == "/v1/fleet/map":
                    doc = self.app.handle_fleet_map(body)
                elif self.path == "/v1/fleet/repair":
                    doc = self.app.handle_fleet_repair(body)
                else:
                    doc = self.app.handle_fleet_entry_put(body)
            except wire.WireError as exc:
                self._reply(400, {"error": str(exc)})
                return
            except Exception as exc:  # noqa: BLE001 - peer fault isolation
                self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})
                return
            self._reply_pickle(200, doc)
            return
        super().do_POST()


class Registrar:
    """Keeps a standalone worker registered with its coordinator.

    The worker side of ``ksr-serve --worker --join URL``: registers on
    start and re-registers every ``interval`` seconds on a daemon
    thread.  Registration is idempotent at the coordinator, so the
    loop doubles as a worker-side heartbeat — it survives coordinator
    restarts (the fresh coordinator relearns the fleet from the
    re-registrations) and re-admits this worker after a partition
    heals, riding the coordinator's rejoin re-replication path.
    """

    def __init__(
        self,
        app: FleetWorkerApp,
        join_url: str,
        advertised_url: str,
        *,
        interval: float = 5.0,
        timeout: float = 10.0,
    ):
        self.app = app
        self.join_url = join_url.rstrip("/")
        self.advertised_url = advertised_url.rstrip("/")
        self.interval = interval
        self.timeout = timeout
        self.registered = threading.Event()
        self.attempts = 0
        self.last_error = ""
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def register_once(self) -> bool:
        """One registration attempt; returns success."""
        self.attempts += 1
        body = {
            "worker_id": self.app.worker_id,
            "base_url": self.advertised_url,
            "version": version_info(),
            "fingerprint": self.app.cache.fingerprint(),
        }
        try:
            status, doc = wire.post_json(
                f"{self.join_url}/v1/fleet/register", body,
                timeout=self.timeout, auth=self.app.auth,
            )
        except wire.WireError as exc:
            self.last_error = str(exc)
            return False
        if status != 200:
            self.last_error = f"HTTP {status}: {doc.get('error', '')}"
            return False
        self.last_error = ""
        self.registered.set()
        return True

    def start(self) -> None:
        """Register now (best effort) and keep re-registering."""
        if self._thread is not None:
            return

        def loop() -> None:
            self.register_once()
            while not self._stop.wait(self.interval):
                self.register_once()

        self._thread = threading.Thread(
            target=loop, name=f"{self.app.worker_id}-registrar", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the re-registration loop and join its thread."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.timeout + 1)
            self._thread = None


def make_worker_server(app: FleetWorkerApp, host: str = "127.0.0.1", port: int = 0,
                       *, verbose: bool = False):
    """Bind a fleet worker to a threading HTTP server (``port=0``: ephemeral)."""
    from repro.service.app import _ServiceHTTPServer

    handler = type(
        "KsrFleetWorkerHandler", (_WorkerHandler,), {"app": app, "verbose": verbose}
    )
    return _ServiceHTTPServer((host, port), handler)
