"""Fleet coordinator: admission, routing, health, handoff.

The coordinator is the fleet's single public face.  It keeps the
single-daemon API contract — same endpoints, same 400/413/429 pricing,
same byte-identical payloads — and adds the fleet concerns on top:

* **Routing** — each job's sweep points are partitioned by the
  consistent-hash ring over their ``point_key`` and posted to the
  owning workers in parallel.  Point purity makes routing invisible in
  the results: any partition of the calls produces the same values, so
  a federated campaign is byte-identical to a single-daemon run.
* **Health & handoff** — workers are heartbeated over ``/healthz``; a
  worker that stops answering (or advertises a different code version,
  whose shard could never serve this coordinator's keys) is removed
  from the ring and its in-flight batches are re-partitioned among the
  survivors.  No job is lost to a worker death — its points are simply
  recomputed (or read through from replicas) at their new owners.
* **Multi-tenant admission** — on top of the shared 413 pricing and
  :class:`~repro.service.batching.JobTable` coalescing, each tenant
  passes a token-bucket quota (429 with the exact token wait as
  ``Retry-After``) and admitted jobs drain in weighted fair-share
  order (:class:`~repro.service.fleet.quotas.FairShareQueue`).
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.experiments.sweep import SweepRunner, point_key
from repro.obs.summary import capture_summary
from repro.service.app import (
    DEFAULT_DRAIN_DEADLINE,
    drain_retry_after,
    version_info,
)
from repro.service.backends import harvest_captures
from repro.service.batching import JobTable, estimate_points
from repro.service.fleet import wire
from repro.service.fleet.quotas import (
    DEFAULT_TENANT,
    FairShareQueue,
    TenantPolicy,
    TokenBucket,
)
from repro.service.fleet.ring import DEFAULT_VNODES, HashRing
from repro.service.jobs import JobSpec, ServiceError, describe_catalog
from repro.service.scheduler import Job, RejectedError

__all__ = ["WorkerHandle", "FleetClient", "FleetSweepRunner", "FleetScheduler",
           "CoordinatorApp", "make_coordinator_server"]


@dataclass
class WorkerHandle:
    """One worker's membership record as the coordinator sees it."""

    worker_id: str
    base_url: str
    alive: bool = True
    reason: str = ""
    failures: int = 0
    last_seen: float = 0.0
    version: dict[str, str] = field(default_factory=dict)
    fingerprint: str = ""
    registered: bool = False
    dead_since: float | None = None
    repaired: bool = False

    def describe(self) -> dict[str, Any]:
        """JSON-able membership summary for status surfaces.

        ``last_seen`` goes out as an *age* in seconds (a raw monotonic
        stamp is meaningless to a reader on another clock), and
        ``version`` rides along so a version-gated worker's mismatch
        is visible right where its ``reason`` says "version mismatch".
        """
        return {
            "worker_id": self.worker_id,
            "base_url": self.base_url,
            "alive": self.alive,
            "reason": self.reason,
            "failures": self.failures,
            "last_seen_age_s": (
                round(time.monotonic() - self.last_seen, 3)
                if self.last_seen else None
            ),
            "version": dict(self.version),
            "fingerprint": self.fingerprint,
            "registered": self.registered,
        }


class FleetClient:
    """Routes point batches to workers; owns ring membership + health.

    Membership is dynamic: the fleet may start empty (a multi-host
    coordinator waiting for ``--worker --join`` daemons to register)
    and grows/shrinks through :meth:`register_worker`, heartbeat
    verdicts and the dead-interval reaper.  Every membership change
    that *gains* a worker a key range — a join, a rejoin, a handoff
    outliving the dead interval — funnels into :meth:`repair`, the one
    re-replication path, so the replication factor is restored instead
    of silently running degraded.
    """

    def __init__(
        self,
        workers: dict[str, str] | None = None,
        *,
        replication: int = 2,
        vnodes: int = DEFAULT_VNODES,
        map_timeout: float = 600.0,
        health_timeout: float = 5.0,
        max_failures: int = 2,
        dead_interval: float = 10.0,
        auth: wire.FleetAuth | None = None,
    ):
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        if dead_interval < 0:
            raise ValueError(f"dead_interval must be >= 0, got {dead_interval}")
        self.replication = replication
        self.map_timeout = map_timeout
        self.health_timeout = health_timeout
        self.max_failures = max_failures
        self.dead_interval = dead_interval
        self.auth = auth or wire.FleetAuth(None)
        self.workers = {
            wid: WorkerHandle(worker_id=wid, base_url=url.rstrip("/"))
            for wid, url in (workers or {}).items()
        }
        self.ring = HashRing(self.workers, vnodes=vnodes)
        self._lock = threading.Lock()
        self._heartbeat_thread: threading.Thread | None = None
        self._stop = threading.Event()
        self.handoffs = 0
        self.routed_points = 0
        self.registrations = 0
        self.repairs = 0
        self.re_replicated = 0
        self.last_replication: dict[str, Any] | None = None
        self.stats_totals = {"points": 0, "local_hits": 0, "remote_hits": 0,
                             "computed": 0}

    # -- membership / health ------------------------------------------

    def alive_workers(self) -> list[WorkerHandle]:
        """Handles of the workers currently on the ring."""
        with self._lock:
            return [w for w in self.workers.values() if w.alive]

    def mark_dead(self, worker_id: str, reason: str) -> None:
        """Drop a worker from the ring; its key range falls to successors."""
        with self._lock:
            handle = self.workers.get(worker_id)
            if handle is None or not handle.alive:
                return
            handle.alive = False
            handle.reason = reason
            handle.dead_since = time.monotonic()
            handle.repaired = False
            self.ring.remove(worker_id)
            self.handoffs += 1

    def mark_alive(self, worker_id: str) -> bool:
        """Re-admit a worker to the ring (heartbeat answered sanely).

        Returns whether this was a dead→alive *rejoin*.  The caller
        must follow a rejoin with :meth:`repair`: keys written while
        the worker was out exist only on the stand-in replicas, and
        re-admission hands the worker its old key range back — without
        re-replication it would own ranges it does not hold.
        """
        with self._lock:
            handle = self.workers[worker_id]
            rejoined = not handle.alive
            if rejoined:
                handle.alive = True
                handle.reason = ""
                handle.dead_since = None
                handle.repaired = False
                self.ring.add(worker_id)
            handle.failures = 0
            handle.last_seen = time.monotonic()
        return rejoined

    def register_worker(
        self,
        worker_id: str,
        base_url: str,
        *,
        version: dict[str, str] | None = None,
        fingerprint: str = "",
    ) -> dict[str, Any]:
        """Admit (or re-admit) a standalone worker into the ring.

        The multi-host join path (``POST /v1/fleet/register``): the
        worker advertises its id, reachable base URL, code+model
        version and shard fingerprint.  A version-mismatched worker is
        refused outright (409) — its shard could never serve this
        coordinator's keys.  Admission is followed by a bounded
        key-range rebalance: only the ~K/N of the keyspace whose
        replica set now includes the newcomer is re-replicated.
        Re-registration is idempotent and doubles as the worker-side
        heartbeat; a re-register after a crash updates the advertised
        URL and rides the same repair path as a heartbeat rejoin.
        """
        version = dict(version or {})
        my_code = version_info()["code"]
        worker_code = version.get("code")
        if worker_code is not None and worker_code != my_code:
            raise ServiceError(
                f"worker {worker_id!r} runs code {worker_code[:12]}…, this "
                f"coordinator runs {my_code[:12]}…: version mismatch",
                status=409,
            )
        base_url = base_url.rstrip("/")
        with self._lock:
            handle = self.workers.get(worker_id)
            needs_repair = False
            if handle is None:
                handle = WorkerHandle(worker_id=worker_id, base_url=base_url)
                self.workers[worker_id] = handle
                self.ring.add(worker_id)
                # A newcomer takes over ~K/N of the keyspace; warm it.
                needs_repair = len(self.ring) > 1
            else:
                handle.base_url = base_url
                if not handle.alive:
                    handle.alive = True
                    handle.reason = ""
                    handle.dead_since = None
                    handle.repaired = False
                    self.ring.add(worker_id)
                    needs_repair = True
            handle.failures = 0
            handle.last_seen = time.monotonic()
            handle.version = version
            handle.fingerprint = fingerprint
            handle.registered = True
            self.registrations += 1
            description = handle.describe()
            members = len(self.ring)
        if needs_repair:
            self.repair()
        return {
            "admitted": True,
            "worker": description,
            "workers": members,
            "replication": self.replication,
        }

    def check_health(self) -> dict[str, bool]:
        """One heartbeat round; returns ``worker_id -> alive`` after it.

        Routing decisions come straight off the health responses: a
        worker advertising a different ``version.code`` is excluded
        (its cache keys are from different code — it could only waste
        compute under keys this coordinator would never find), a
        worker that failed ``max_failures`` consecutive probes is
        excluded, and a previously dead worker that answers again with
        a matching version rejoins the ring.
        """
        my_version = version_info()["code"]
        rejoined = False
        for handle in list(self.workers.values()):
            try:
                status, doc = wire.get_json(
                    f"{handle.base_url}/healthz", timeout=self.health_timeout
                )
            except wire.WireError:
                with self._lock:
                    handle.failures += 1
                    failures = handle.failures
                if failures >= self.max_failures:
                    self.mark_dead(handle.worker_id, "unreachable")
                continue
            worker_version = doc.get("version") or {}
            with self._lock:
                # Record what the worker advertised either way, so a
                # version-gated handle *shows* the mismatching version.
                handle.version = dict(worker_version)
            if status != 200 or doc.get("status") not in ("ok", "draining"):
                self.mark_dead(handle.worker_id, f"unhealthy ({status})")
                continue
            worker_code = worker_version.get("code")
            if worker_code is not None and worker_code != my_version:
                self.mark_dead(handle.worker_id, "version mismatch")
                continue
            if doc.get("status") == "draining":
                self.mark_dead(handle.worker_id, "draining")
                continue
            rejoined |= self.mark_alive(handle.worker_id)
        if rejoined:
            # Rejoin-without-repair would hand the worker back key
            # ranges it never saw written; re-replicate before routing
            # leans on it as a replica.
            self.repair()
        with self._lock:
            return {wid: h.alive for wid, h in self.workers.items()}

    def reap_dead(self) -> bool:
        """Re-replicate the key ranges of workers dead past the interval.

        Permanent-loss handling: once a worker has been off the ring
        for ``dead_interval`` seconds, its key range — now owned by
        ring successors that may hold no copies — is restored to the
        full replication factor from the surviving replicas.  Each
        death triggers exactly one repair; returns whether one ran.
        """
        now = time.monotonic()
        due = []
        with self._lock:
            for handle in self.workers.values():
                if (
                    not handle.alive
                    and not handle.repaired
                    and handle.dead_since is not None
                    and now - handle.dead_since >= self.dead_interval
                ):
                    handle.repaired = True
                    due.append(handle.worker_id)
        if not due:
            return False
        self.repair()
        return True

    def start_heartbeat(self, interval: float = 2.0) -> None:
        """Poll worker health on a daemon thread every ``interval`` s."""
        if self._heartbeat_thread is not None:
            return

        def loop() -> None:
            while not self._stop.wait(interval):
                self.check_health()
                self.reap_dead()

        self._heartbeat_thread = threading.Thread(
            target=loop, name="fleet-heartbeat", daemon=True
        )
        self._heartbeat_thread.start()

    def close(self) -> None:
        """Stop the heartbeat thread (idempotent)."""
        self._stop.set()
        if self._heartbeat_thread is not None:
            self._heartbeat_thread.join(timeout=5)
            self._heartbeat_thread = None

    # -- routing -------------------------------------------------------

    def _peer_urls(self, exclude: str) -> list[str]:
        with self._lock:
            return [
                w.base_url for w in self.workers.values()
                if w.alive and w.worker_id != exclude
            ]

    def _replica_urls(self, worker_id: str) -> list[str]:
        """Where ``worker_id`` pushes fresh results: its ring successors."""
        with self._lock:
            if worker_id not in self.ring:
                return []
            successors = self.ring.successors(worker_id, self.replication - 1)
            return [self.workers[wid].base_url for wid in successors
                    if self.workers[wid].alive]

    def _map_one(
        self, handle: WorkerHandle, func_id: str, calls: list[dict[str, Any]]
    ) -> dict[str, Any] | None:
        body = {
            "func": func_id,
            "calls": calls,
            "peers": self._peer_urls(exclude=handle.worker_id),
            "replicas": self._replica_urls(handle.worker_id),
        }
        try:
            status, doc = wire.post_pickle(
                f"{handle.base_url}/v1/fleet/map", body,
                timeout=self.map_timeout, auth=self.auth,
            )
        except wire.WireError:
            return None
        if status != 200 or not isinstance(doc, dict) or "values" not in doc:
            return None
        if len(doc["values"]) != len(calls):
            return None  # truncated answer: treat like a dead worker
        return doc

    def map_points(
        self, func: Callable[..., Any], calls: Sequence[dict[str, Any]]
    ) -> tuple[list[Any], dict[str, int]]:
        """Route every call to its owner; survive worker deaths mid-map.

        Unanswered batches are re-partitioned over the surviving ring
        until every call has a value — the key-range handoff path.  The
        per-map stats dict reports how the points were served.
        """
        calls = list(calls)
        func_id = f"{func.__module__}.{func.__qualname__}"
        keys = [point_key(func, kwargs) for kwargs in calls]
        results: list[Any] = [None] * len(calls)
        resolved = [False] * len(calls)
        stats = {"points": len(calls), "local_hits": 0, "remote_hits": 0,
                 "computed": 0}
        unresolved = list(range(len(calls)))
        # Every retry round loses at least one worker, so membership
        # size bounds the rounds; +1 for the clean first pass.
        for _ in range(len(self.workers) + 1):
            if not unresolved:
                break
            alive = {w.worker_id: w for w in self.alive_workers()}
            if not alive:
                raise ServiceError("no live fleet workers", status=503)
            groups: dict[str, list[int]] = {}
            with self._lock:
                for i in unresolved:
                    groups.setdefault(self.ring.owner(keys[i]), []).append(i)
            with ThreadPoolExecutor(max_workers=len(groups)) as pool:
                futures = {
                    wid: pool.submit(
                        self._map_one, alive[wid], func_id,
                        [calls[i] for i in indices],
                    )
                    for wid, indices in groups.items()
                }
                still_unresolved: list[int] = []
                for wid, indices in groups.items():
                    doc = futures[wid].result()
                    if doc is None:
                        self.mark_dead(wid, "map failure")
                        still_unresolved.extend(indices)
                        continue
                    for i, value in zip(indices, doc["values"]):
                        results[i] = value
                        resolved[i] = True
                    for name in ("local_hits", "remote_hits", "computed"):
                        stats[name] += doc["stats"].get(name, 0)
            unresolved = still_unresolved
        if unresolved:
            raise ServiceError(
                f"{len(unresolved)} points could not be routed to any "
                f"live worker", status=503,
            )
        self.routed_points += len(calls)
        for name, value in stats.items():
            self.stats_totals[name] += value if name != "points" else len(calls)
        return results, stats

    # -- re-replication ------------------------------------------------

    def _fetch_holders(
        self, alive: Sequence[WorkerHandle]
    ) -> dict[str, set[str]]:
        """``key -> worker_ids holding a copy`` across the live fleet."""
        holders: dict[str, set[str]] = {}
        for handle in alive:
            try:
                status, doc = wire.get_json(
                    f"{handle.base_url}/v1/fleet/keys",
                    timeout=self.health_timeout, auth=self.auth,
                )
            except wire.WireError:
                continue
            if status != 200:
                continue
            for key in doc.get("keys", ()):
                holders.setdefault(key, set()).add(handle.worker_id)
        return holders

    def replication_report(self) -> dict[str, Any]:
        """Live census of how replicated every known key actually is.

        Diffs each key's resident copies against its desired ring
        replica set.  ``under_replicated`` counts keys missing from at
        least one desired replica — the number :meth:`repair` drives to
        zero.  The report is cached on ``last_replication`` so
        ``/v1/stats`` can show it without re-polling the fleet.
        """
        alive = self.alive_workers()
        holders = self._fetch_holders(alive)
        with self._lock:
            want_map = self.ring.replica_map(holders, self.replication)
        histogram: dict[str, int] = {}
        under = 0
        min_copies = None
        for key, have in holders.items():
            copies = len(have)
            histogram[str(copies)] = histogram.get(str(copies), 0) + 1
            min_copies = copies if min_copies is None else min(min_copies, copies)
            if any(wid not in have for wid in want_map[key]):
                under += 1
        report = {
            "keys": len(holders),
            "replication": self.replication,
            "effective_replication": min(self.replication, len(alive)),
            "alive": len(alive),
            "histogram": histogram,
            "min_copies": min_copies or 0,
            "under_replicated": under,
        }
        self.last_replication = report
        return report

    def repair(self) -> dict[str, Any]:
        """One re-replication round: restore the replication factor.

        Pulls every live worker's resident key list, computes each
        key's desired replica set on the current ring, and instructs
        one holder of every under-replicated key to push copies to the
        replica-set members that lack it (``POST /v1/fleet/repair``).
        Push sources prefer a desired-replica holder so the copy comes
        off a disk that will keep serving the key.  Best-effort per
        worker — an unreachable holder just leaves its keys for the
        next round — and bounded: only missing (key, peer) pairs move.
        """
        alive = self.alive_workers()
        urls = {h.worker_id: h.base_url for h in alive}
        holders = self._fetch_holders(alive)
        with self._lock:
            want_map = self.ring.replica_map(holders, self.replication)
        pushes: dict[str, list[dict[str, Any]]] = {}
        planned = 0
        for key, have in holders.items():
            want = want_map[key]
            missing = [wid for wid in want if wid not in have and wid in urls]
            if not missing:
                continue
            source = next((wid for wid in want if wid in have), None)
            if source is None:
                source = next(iter(have))
            pushes.setdefault(source, []).append(
                {"key": key, "peers": [urls[wid] for wid in missing]}
            )
            planned += len(missing)
        pushed = 0
        for source, assignments in pushes.items():
            try:
                status, doc = wire.post_pickle(
                    f"{urls[source]}/v1/fleet/repair",
                    {"pushes": assignments},
                    timeout=self.map_timeout, auth=self.auth,
                )
            except wire.WireError:
                continue
            if status == 200 and isinstance(doc, dict):
                pushed += int(doc.get("pushed", 0))
        with self._lock:
            self.repairs += 1
            self.re_replicated += pushed
        report = self.replication_report()
        report["planned"] = planned
        report["pushed"] = pushed
        self.last_replication = report
        return report

    # -- status --------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Membership, routing and served-point counters."""
        with self._lock:
            return {
                "workers": {wid: h.describe() for wid, h in self.workers.items()},
                "alive": sorted(w.worker_id for w in self.workers.values() if w.alive),
                "replication": self.replication,
                "vnodes": self.ring.vnodes,
                "handoffs": self.handoffs,
                "routed_points": self.routed_points,
                "registrations": self.registrations,
                "dead_interval": self.dead_interval,
                "repairs": self.repairs,
                "re_replicated": self.re_replicated,
                "replication_status": (
                    dict(self.last_replication) if self.last_replication else None
                ),
                "auth": self.auth.enabled,
                "totals": dict(self.stats_totals),
            }


class FleetSweepRunner(SweepRunner):
    """A :class:`SweepRunner` whose execute seam is the worker fleet.

    The coordinator holds no point cache of its own — every cache shard
    lives with its owning worker — so *all* calls flow to ``_execute``
    and the per-point served/computed accounting comes back in the map
    responses.  Captures are harvested exactly like the single-daemon
    :class:`~repro.service.backends.BackendSweepRunner`.
    """

    def __init__(self, client: FleetClient):
        super().__init__(jobs=1, cache=None)
        self.client = client
        self.captures: list[Any] = []
        self.fleet_stats = {"points": 0, "local_hits": 0, "remote_hits": 0,
                            "computed": 0}

    def map(self, func, calls, *, on_result=None):  # type: ignore[override]
        """Fan one sweep out over the fleet, harvesting obs captures."""
        results = super().map(func, calls, on_result=on_result)
        self.captures.extend(harvest_captures(results))
        return results

    def _execute(self, func: Callable[..., Any], calls: Sequence[dict[str, Any]]) -> list[Any]:
        values, stats = self.client.map_points(func, calls)
        for name in self.fleet_stats:
            self.fleet_stats[name] += stats.get(name, 0)
        return values


class FleetScheduler:
    """Multi-tenant, fair-share job executor over a worker fleet.

    Shares the single-daemon scheduler's contract (submit → Job,
    bounded accepted-set, 413 pricing, coalescing, retry-after hints)
    but admits per tenant and dequeues by weighted fair share.
    """

    def __init__(
        self,
        client: FleetClient,
        *,
        exec_workers: int = 4,
        queue_cap: int = 32,
        max_points: int = 512,
        policies: dict[str, TenantPolicy] | None = None,
        default_policy: TenantPolicy | None = None,
    ):
        if exec_workers < 1:
            raise ValueError(f"exec_workers must be >= 1, got {exec_workers}")
        if queue_cap < 1:
            raise ValueError(f"queue_cap must be >= 1, got {queue_cap}")
        self.client = client
        self.queue_cap = queue_cap
        self.max_points = max_points
        self.policies = dict(policies or {})
        self.default_policy = default_policy or TenantPolicy()
        self._buckets: dict[str, TokenBucket] = {}
        self._fair = FairShareQueue(self.policy_for)
        self._table = JobTable()
        self._jobs: dict[str, Job] = {}
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._queued = 0
        self._recent_seconds: list[float] = []
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.rejected = 0
        self.rejected_quota = 0
        self.stranded = 0
        self._closing = False
        self._tenants: dict[str, dict[str, int]] = {}
        self._workers = [
            threading.Thread(target=self._worker, name=f"fleet-exec-{i}", daemon=True)
            for i in range(exec_workers)
        ]
        for thread in self._workers:
            thread.start()

    # -- tenancy -------------------------------------------------------

    def policy_for(self, tenant: str) -> TenantPolicy:
        """The admission policy governing ``tenant``."""
        return self.policies.get(tenant, self.default_policy)

    def _bucket_for(self, tenant: str) -> TokenBucket | None:
        policy = self.policy_for(tenant)
        if policy.rate is None:
            return None
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = TokenBucket(policy.rate, policy.burst)
        return bucket

    def _tenant_counters(self, tenant: str) -> dict[str, int]:
        counters = self._tenants.get(tenant)
        if counters is None:
            counters = self._tenants[tenant] = {
                "submitted": 0, "completed": 0, "failed": 0,
                "rejected_quota": 0, "rejected_queue": 0, "coalesced": 0,
            }
        return counters

    # -- submission ----------------------------------------------------

    def _retry_after_locked(self) -> float:
        recent = self._recent_seconds
        per_job = (sum(recent) / len(recent)) if recent else 1.0
        return max(1.0, round(self._queued * per_job / len(self._workers), 1))

    def retry_after(self) -> float:
        """Public (locking) form of the back-off hint."""
        with self._lock:
            return self._retry_after_locked()

    def submit(self, spec: JobSpec, tenant: str = DEFAULT_TENANT) -> Job:
        """Admit, coalesce or reject one spec for ``tenant``."""
        points = estimate_points(spec)
        if points > self.max_points:
            raise ServiceError(
                f"job would fan out {points} sweep points, over this "
                f"fleet's per-job bound of {self.max_points}; split the "
                f"request",
                status=413,
            )
        with self._lock:
            if self._closing:
                raise ServiceError("fleet scheduler is draining", status=503)
            counters = self._tenant_counters(tenant)
            self.submitted += 1
            counters["submitted"] += 1
            bucket = self._bucket_for(tenant)
            if bucket is not None:
                ok, wait = bucket.try_take()
                if not ok:
                    self.rejected_quota += 1
                    counters["rejected_quota"] += 1
                    raise RejectedError(
                        f"tenant {tenant!r} is over its admission quota; "
                        f"retry later",
                        retry_after=max(wait, 0.1),
                    )
            job = Job(
                job_id=f"job-{next(self._ids)}",
                spec=spec,
                tenant=tenant,
                submitted_at=time.time(),
            )
            existing = self._table.claim(spec.canonical(), job)
            if existing is not None:
                counters["coalesced"] += 1
                return existing
            if self._queued >= self.queue_cap:
                self.rejected += 1
                counters["rejected_queue"] += 1
                self._table.release(spec.canonical())
                raise RejectedError(
                    f"fleet queue full ({self.queue_cap} jobs); retry later",
                    retry_after=self._retry_after_locked(),
                )
            self._queued += 1
            self._jobs[job.job_id] = job
        self._fair.push(tenant, job)
        return job

    def get(self, job_id: str) -> Job | None:
        """Look up an accepted job by id (None if unknown)."""
        with self._lock:
            return self._jobs.get(job_id)

    # -- execution -----------------------------------------------------

    def _worker(self) -> None:
        while True:
            item = self._fair.pop()
            if item is None:
                return
            _, job = item
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        job.status = "running"
        job.started_at = time.time()
        runner = FleetSweepRunner(self.client)
        try:
            payload = job.spec.execute(runner)
        except ServiceError as exc:
            job.status = "failed"
            job.error = str(exc)
        except Exception as exc:  # noqa: BLE001 - a job must never kill a worker
            job.status = "failed"
            job.error = f"{type(exc).__name__}: {exc}"
        else:
            served = runner.fleet_stats
            job.payload = payload
            job.cache = {
                # Same shape the single daemon reports: "hits" is every
                # cache-served point (own shard or replica), "misses"
                # is every freshly computed one — what the >=95%
                # resubmit assertion divides.
                "hits": served["local_hits"] + served["remote_hits"],
                "misses": served["computed"],
                "local_hits": served["local_hits"],
                "remote_hits": served["remote_hits"],
                "computed": served["computed"],
                "points": served["points"],
                "fleet": True,
            }
            job.obs = [capture_summary(c) for c in runner.captures]
            job.status = "done"
        finally:
            job.finished_at = time.time()
            with self._lock:
                self._queued -= 1
                counters = self._tenant_counters(job.tenant)
                if job.status == "done":
                    self.completed += 1
                    counters["completed"] += 1
                else:
                    self.failed += 1
                    counters["failed"] += 1
                self._recent_seconds.append(job.finished_at - job.started_at)
                del self._recent_seconds[:-20]
            self._table.release(job.spec.canonical())
            job._done.set()

    # -- lifecycle / stats ---------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Scheduler counters, overall and per tenant."""
        with self._lock:
            return {
                "workers": len(self._workers),
                "queue_cap": self.queue_cap,
                "queued": self._queued,
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "rejected": self.rejected,
                "rejected_quota": self.rejected_quota,
                "stranded": self.stranded,
                "coalesced": self._table.coalesced,
                "max_points": self.max_points,
                "backend": "fleet",
                "tenants": {t: dict(c) for t, c in sorted(self._tenants.items())},
            }

    def drain(self, deadline: float = 30.0) -> int:
        """Wait (bounded) for the accepted set to empty; returns leftovers."""
        end = time.monotonic() + max(0.0, deadline)
        while time.monotonic() < end:
            with self._lock:
                if self._queued == 0:
                    return 0
            time.sleep(0.02)
        with self._lock:
            return self._queued

    def close(self, deadline: float = 30.0) -> int:
        """Bounded-deadline drain, mirroring ``Scheduler.close``."""
        with self._lock:
            already_closing = self._closing
            self._closing = True
        if not already_closing:
            self.drain(deadline)
            self._fair.close()
        end = time.monotonic() + max(1.0, deadline / 2)
        for thread in self._workers:
            thread.join(timeout=max(0.0, end - time.monotonic()))
        with self._lock:
            stranded = self._queued
            self.stranded = stranded
        return stranded


class CoordinatorApp:
    """The coordinator's HTTP facade (duck-typed like ``ServiceApp``).

    ``make_server`` from :mod:`repro.service.app` binds it unchanged —
    the handler only needs ``handle_get`` and ``handle_submit``.
    """

    def __init__(
        self,
        client: FleetClient,
        *,
        exec_workers: int = 4,
        queue_cap: int = 32,
        max_points: int = 512,
        policies: dict[str, TenantPolicy] | None = None,
        default_policy: TenantPolicy | None = None,
        heartbeat_interval: float | None = 2.0,
    ):
        self.client = client
        self.scheduler = FleetScheduler(
            client,
            exec_workers=exec_workers,
            queue_cap=queue_cap,
            max_points=max_points,
            policies=policies,
            default_policy=default_policy,
        )
        self.started_at = time.time()
        self._closing = threading.Event()
        self._drain_ends_at: float | None = None
        if heartbeat_interval:
            client.start_heartbeat(heartbeat_interval)

    @property
    def closing(self) -> bool:
        return self._closing.is_set()

    def begin_shutdown(
        self, drain_deadline: float = DEFAULT_DRAIN_DEADLINE
    ) -> None:
        """Flip to draining: new submissions get 503 from now on."""
        if not self._closing.is_set():
            self._drain_ends_at = time.monotonic() + max(0.0, drain_deadline)
        self._closing.set()

    def drain_retry_after(self) -> int:
        """Seconds a 503'd client should wait before resubmitting."""
        return drain_retry_after(self._drain_ends_at)

    def close(self, *, drain_deadline: float = 30.0) -> int:
        """Stop admitting, drain accepted jobs, stop the heartbeat."""
        self.begin_shutdown(drain_deadline)
        stranded = self.scheduler.close(deadline=drain_deadline)
        self.client.close()
        return stranded

    # -- request handling ----------------------------------------------

    def handle_get(self, path: str) -> tuple[int, dict[str, Any]]:
        """Route one GET; returns ``(status, json_doc)``."""
        if path == "/healthz":
            fleet = self.client.stats()
            return 200, {
                "status": "draining" if self.closing else "ok",
                "role": "coordinator",
                "uptime_s": round(time.time() - self.started_at, 3),
                "version": version_info(),
                "fleet": {"alive": fleet["alive"],
                          "workers": len(fleet["workers"]),
                          "handoffs": fleet["handoffs"]},
            }
        if path == "/v1/stats":
            return 200, {
                "scheduler": self.scheduler.stats(),
                "fleet": self.client.stats(),
                "version": version_info(),
            }
        if path == "/v1/fleet/workers":
            return 200, self.client.stats()
        if path == "/v1/fleet/replication":
            return 200, self.client.replication_report()
        if path == "/v1/experiments":
            return 200, describe_catalog()
        if path.startswith("/v1/jobs/"):
            job = self.scheduler.get(path.removeprefix("/v1/jobs/"))
            if job is None:
                return 404, {"error": "no such job"}
            return 200, job.describe()
        return 404, {"error": f"no such endpoint {path!r}"}

    def handle_register(self, body: dict[str, Any]) -> tuple[int, dict[str, Any]]:
        """Admit one ``POST /v1/fleet/register`` body; ``(status, doc)``.

        The worker side of the multi-host join handshake.  Validation
        errors are the caller's fault (400); a version mismatch is a
        409 (re-registering won't help until one side redeploys).
        """
        worker_id = body.get("worker_id")
        base_url = body.get("base_url")
        if not isinstance(worker_id, str) or not worker_id:
            return 400, {"error": "'worker_id' must be a non-empty string"}
        if not isinstance(base_url, str) or not base_url.startswith(("http://", "https://")):
            return 400, {"error": "'base_url' must be an http(s) URL"}
        version = body.get("version") or {}
        if not isinstance(version, dict):
            return 400, {"error": "'version' must be an object"}
        fingerprint = body.get("fingerprint", "")
        if not isinstance(fingerprint, str):
            return 400, {"error": "'fingerprint' must be a string"}
        try:
            doc = self.client.register_worker(
                worker_id, base_url, version=version, fingerprint=fingerprint
            )
        except ServiceError as exc:
            return exc.status, {"error": str(exc)}
        return 200, doc

    def handle_submit(
        self, body: dict[str, Any]
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        """Admit one job submission; ``(status, doc, extra_headers)``."""
        from repro.service.app import MAX_WAIT_SECONDS

        if self.closing:
            return (
                503,
                {"error": "coordinator is draining; retry later"},
                {"Retry-After": str(self.drain_retry_after())},
            )
        tenant = body.get("tenant", DEFAULT_TENANT)
        if not isinstance(tenant, str) or not tenant:
            return 400, {"error": "'tenant' must be a non-empty string"}, {}
        try:
            spec = JobSpec.from_request(body)
            job = self.scheduler.submit(spec, tenant)
        except RejectedError as exc:
            return (
                exc.status,
                {"error": str(exc), "retry_after": exc.retry_after},
                {"Retry-After": str(int(exc.retry_after + 0.5) or 1)},
            )
        except ServiceError as exc:
            return exc.status, {"error": str(exc)}, {}
        if body.get("wait"):
            timeout = min(float(body.get("timeout", MAX_WAIT_SECONDS)), MAX_WAIT_SECONDS)
            if not job.wait(timeout):
                return 202, job.describe(), {}
            return 200, job.describe(), {}
        return 202, job.describe(), {}


def make_coordinator_server(
    app: CoordinatorApp, host: str = "127.0.0.1", port: int = 0,
    *, verbose: bool = False,
):
    """Bind a coordinator to a threading HTTP server (``port=0``: ephemeral).

    Unlike the plain :func:`repro.service.app.make_server`, the handler
    knows the fleet control plane: ``POST /v1/fleet/register`` (JSON)
    admits standalone workers, and every ``/v1/fleet/*`` path — reads
    included — rejects requests without a valid ``X-Fleet-Token``.
    """
    import json as _json

    from repro.service.app import _Handler, _ServiceHTTPServer

    class Handler(_Handler):
        def _fleet_authorized(self) -> bool:
            presented = self.headers.get(wire.FLEET_TOKEN_HEADER)
            if self.app.client.auth.verify(presented):
                return True
            self._reply(401, {"error": "missing or invalid fleet token"})
            return False

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            if self.path.startswith("/v1/fleet/") and not self._fleet_authorized():
                return
            super().do_GET()

        def do_POST(self) -> None:  # noqa: N802 - http.server API
            if self.path == "/v1/fleet/register":
                if not self._fleet_authorized():
                    return
                try:
                    length = int(self.headers.get("Content-Length", "0"))
                    body = _json.loads(self.rfile.read(length) or b"null")
                except (ValueError, _json.JSONDecodeError):
                    self._reply(400, {"error": "request body must be valid JSON"})
                    return
                if not isinstance(body, dict):
                    self._reply(400, {"error": "request body must be a JSON object"})
                    return
                status, doc = self.app.handle_register(body)
                self._reply(status, doc)
                return
            if self.path.startswith("/v1/fleet/") and not self._fleet_authorized():
                return
            super().do_POST()

    handler = type(
        "KsrCoordinatorHandler", (Handler,), {"app": app, "verbose": verbose}
    )
    return _ServiceHTTPServer((host, port), handler)
