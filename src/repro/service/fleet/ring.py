"""Consistent-hash ring: which worker owns which ``point_key``.

The fleet's routing question — *given a sweep point's cache key, which
worker computes and caches it?* — must have an answer that is

* **deterministic** — every coordinator (and every restart of the same
  coordinator) maps a key to the same worker, or cached entries would
  be invisible to their own owner;
* **balanced** — keys spread evenly over workers, because a sweep's
  points are embarrassingly parallel and the slowest shard gates the
  campaign;
* **stable under resize** — adding or losing a worker must move only
  ``~K/N`` of the keyspace, not reshuffle everything, or a single
  worker death would cold-start the whole fleet cache.

A classic consistent-hash ring with virtual nodes gives all three:
each worker hashes to ``vnodes`` points on a 2^256 circle (SHA-256 of
``"worker_id#i"``), a key is owned by the first vnode clockwise from
``SHA-256(key)``, and replicas are the next distinct workers around
the circle.  SHA-256 keeps placement identical across processes and
Python versions (no ``hash()`` randomisation) and reuses the digest
family ``point_key`` itself is built on.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable

__all__ = ["HashRing", "DEFAULT_VNODES"]

#: Virtual nodes per worker.  64 keeps the max/min shard-load ratio of
#: a small fleet within a few percent while the ring stays tiny
#: (N * 64 sorted ints).
DEFAULT_VNODES = 64


def _hash_position(text: str) -> int:
    """Position of ``text`` on the 2^256 circle."""
    return int.from_bytes(hashlib.sha256(text.encode("utf-8")).digest(), "big")


class HashRing:
    """Virtual-node consistent-hash ring over worker ids.

    Worker ids are opaque strings (the fleet uses stable worker names,
    not URLs, so a worker keeps its keyspace across re-binds).  The
    ring is rebuilt on membership change — membership changes are rare
    (resize, death) and the rebuild is O(N * vnodes * log).
    """

    def __init__(self, nodes: Iterable[str] = (), *, vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._nodes: set[str] = set()
        self._positions: list[int] = []
        self._owners: list[str] = []
        for node in nodes:
            self._nodes.add(node)
        self._rebuild()

    # -- membership ---------------------------------------------------

    def add(self, node: str) -> None:
        """Add a worker; only ~K/N keys change owner."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        self._rebuild()

    def remove(self, node: str) -> None:
        """Drop a worker; its keys fall to their ring successors."""
        if node not in self._nodes:
            return
        self._nodes.remove(node)
        self._rebuild()

    def nodes(self) -> list[str]:
        """Current members, sorted (stable for stats surfaces)."""
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def _rebuild(self) -> None:
        pairs = sorted(
            (_hash_position(f"{node}#{i}"), node)
            for node in self._nodes
            for i in range(self.vnodes)
        )
        self._positions = [p for p, _ in pairs]
        self._owners = [n for _, n in pairs]

    # -- lookup -------------------------------------------------------

    def owner(self, key: str) -> str:
        """The worker owning ``key`` (first vnode clockwise)."""
        if not self._owners:
            raise LookupError("hash ring is empty: no workers")
        index = bisect.bisect_right(self._positions, _hash_position(key))
        if index == len(self._positions):
            index = 0  # wrap past the top of the circle
        return self._owners[index]

    def replicas(self, key: str, count: int) -> list[str]:
        """Owner plus the next distinct workers clockwise, ``count`` total.

        The replica set is capped at the membership size; the owner is
        always first.  This is the per-key clockwise walk; the *data
        plane* replicates along the owner's per-worker successor chain
        instead (see :meth:`replica_map`).
        """
        if not self._owners:
            raise LookupError("hash ring is empty: no workers")
        count = min(count, len(self._nodes))
        start = bisect.bisect_right(self._positions, _hash_position(key))
        out: list[str] = []
        for step in range(len(self._owners)):
            node = self._owners[(start + step) % len(self._owners)]
            if node not in out:
                out.append(node)
                if len(out) == count:
                    break
        return out

    def replica_map(self, keys: Iterable[str], count: int) -> dict[str, list[str]]:
        """Desired replica set for every key in one pass.

        The re-replication planner's view of the ring: after a
        membership change this says where each known key *should*
        live, which the coordinator diffs against where copies
        actually are to compute the bounded set of pushes that
        restores the replication factor.

        The desired set is ``owner + successors(owner)`` — the same
        per-worker chain the data plane pushes fresh results along —
        *not* the per-key :meth:`replicas` walk.  With virtual nodes
        the two differ (a key's next-clockwise worker varies per key,
        a worker's successor chain does not); judging the census
        against a placement nothing writes to would report permanent
        under-replication that no repair round could drain.
        """
        chains: dict[str, list[str]] = {}
        out: dict[str, list[str]] = {}
        for key in keys:
            owner = self.owner(key)
            chain = chains.get(owner)
            if chain is None:
                chain = chains[owner] = [owner] + self.successors(owner, count - 1)
            out[key] = chain
        return out

    def successors(self, node: str, count: int) -> list[str]:
        """The next ``count`` distinct workers after ``node``'s first vnode.

        Used as a worker's *replica peer chain*: fresh results computed
        by ``node`` are pushed to these workers, so after ``node`` dies
        its keyspace (which falls to exactly these successors) is still
        warm.
        """
        if node not in self._nodes:
            raise LookupError(f"{node!r} is not on the ring")
        others = [n for n in self._nodes if n != node]
        count = min(count, len(others))
        if count == 0:
            return []
        start = bisect.bisect_right(self._positions, _hash_position(f"{node}#0"))
        out: list[str] = []
        for step in range(len(self._owners)):
            candidate = self._owners[(start + step) % len(self._owners)]
            if candidate != node and candidate not in out:
                out.append(candidate)
                if len(out) == count:
                    break
        return out
