"""One-process fleet harness: coordinator + N workers on real sockets.

Tests, ``ksr-serve --fleet``, the fleet smoke and the load generator
all need the same thing: a coordinator and a handful of workers, each
bound to its own ephemeral loopback port, each owning its own cache
shard directory, wired together and torn down cleanly.  Running them
as threads in one process keeps the harness fast and debuggable while
every byte still crosses a real HTTP socket — the wire protocol, the
routing, the read-through and the replication paths are all exercised
exactly as they would be across machines.
"""

from __future__ import annotations

import threading
from http.server import ThreadingHTTPServer
from pathlib import Path
from typing import Any

from repro.service.fleet.coordinator import (
    CoordinatorApp,
    FleetClient,
    make_coordinator_server,
)
from repro.service.fleet.quotas import TenantPolicy
from repro.service.fleet.wire import FleetAuth
from repro.service.fleet.worker import FleetWorkerApp, make_worker_server

__all__ = ["LocalFleet"]


class _Member:
    """One running server (app + HTTP server + serving thread)."""

    def __init__(self, app: Any, server: ThreadingHTTPServer):
        self.app = app
        self.server = server
        self.thread = threading.Thread(target=server.serve_forever, daemon=True)
        self.thread.start()

    @property
    def base_url(self) -> str:
        host, port = self.server.server_address[0], self.server.server_address[1]
        return f"http://{host}:{port}"

    def kill(self) -> None:
        """Hard stop: close the socket without draining (a 'crash')."""
        self.server.shutdown()
        self.server.server_close()
        self.thread.join(timeout=10)

    def stop(self, *, drain_deadline: float = 30.0) -> int:
        """Graceful stop: stop serving, drain the app, release."""
        self.server.shutdown()
        self.server.server_close()
        self.thread.join(timeout=10)
        return self.app.close(drain_deadline=drain_deadline)


class LocalFleet:
    """Coordinator + ``n_workers`` fleet on loopback, context-managed."""

    def __init__(
        self,
        cache_root: str | Path,
        *,
        n_workers: int = 3,
        backend: str = "inline",
        replication: int = 2,
        queue_cap: int = 32,
        exec_workers: int = 4,
        worker_threads: int = 2,
        max_points: int = 512,
        max_batch: int = 64,
        policies: dict[str, TenantPolicy] | None = None,
        default_policy: TenantPolicy | None = None,
        heartbeat_interval: float | None = 1.0,
        host: str = "127.0.0.1",
        dead_interval: float = 10.0,
        auth: FleetAuth | None = None,
    ):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        cache_root = Path(cache_root)
        # Even the loopback harness runs with a real shared secret:
        # the auth path is then exercised by every fleet test for free.
        self.auth = auth or FleetAuth.generate()
        self.host = host
        self.workers: dict[str, _Member] = {}
        for i in range(n_workers):
            worker_id = f"worker-{i}"
            app = FleetWorkerApp(
                str(cache_root / worker_id),
                worker_id=worker_id,
                backend=backend,
                workers=worker_threads,
                queue_cap=queue_cap,
                max_points=max_points,
                max_batch=max_batch,
                auth=self.auth,
            )
            self.workers[worker_id] = _Member(app, make_worker_server(app, host, 0))
        self.client = FleetClient(
            {wid: member.base_url for wid, member in self.workers.items()},
            replication=replication,
            dead_interval=dead_interval,
            auth=self.auth,
        )
        self.coordinator = CoordinatorApp(
            self.client,
            exec_workers=exec_workers,
            queue_cap=queue_cap,
            max_points=max_points,
            policies=policies,
            default_policy=default_policy,
            heartbeat_interval=heartbeat_interval,
        )
        self._coord = _Member(
            self.coordinator, make_coordinator_server(self.coordinator, host, 0)
        )

    @property
    def base_url(self) -> str:
        """The coordinator's public URL — the fleet's single front door."""
        return self._coord.base_url

    def worker_urls(self) -> dict[str, str]:
        """``worker_id -> base_url`` for every member, dead or alive."""
        return {wid: member.base_url for wid, member in self.workers.items()}

    def worker_app(self, worker_id: str) -> FleetWorkerApp:
        """Direct handle on one worker's app (tests reach into shards)."""
        return self.workers[worker_id].app

    def kill_worker(self, worker_id: str) -> None:
        """Simulate a worker crash (socket closed, nothing drained)."""
        self.workers[worker_id].kill()

    def restart_worker(self, worker_id: str) -> None:
        """Re-bind a killed worker's app on its old port (a 'reboot').

        The shard directory (and thus every entry written before the
        crash) survives; the next heartbeat or registration re-admits
        the worker, which triggers the coordinator's rejoin
        re-replication.
        """
        member = self.workers[worker_id]
        if member.thread.is_alive():
            raise RuntimeError(f"{worker_id} is still serving; kill it first")
        port = member.server.server_address[1]
        self.workers[worker_id] = _Member(
            member.app, make_worker_server(member.app, self.host, port)
        )

    def close(self, *, drain_deadline: float = 30.0) -> None:
        """Graceful teardown: coordinator first (stops routing), then workers."""
        self._coord.stop(drain_deadline=drain_deadline)
        for member in self.workers.values():
            if member.thread.is_alive():
                member.stop(drain_deadline=drain_deadline)
            else:  # already killed; still release its scheduler/backend
                member.app.close(drain_deadline=0)

    def __enter__(self) -> "LocalFleet":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
