"""``ksr-faults``: run resilience campaigns from the command line.

Commands
--------
``campaign``
    Sweep the figure-3 lock workload over ``--processors`` x
    ``--fault-rates``, print the summary table, optionally write the
    deterministic JSON summary (``--format json`` / ``--output``) and
    per-point Chrome traces (``--trace-dir``).
``smoke``
    A 30-second sanity campaign: one processor count, the clean
    baseline plus one fault rate, small operation count.  CI runs this
    and archives the JSON artifact.

Examples
--------
::

    ksr-faults campaign --processors 8,16,32 --jobs 4
    ksr-faults campaign --fault-rates 0,1e-4 --format json --output out.json
    ksr-faults smoke --processors 8 --fault-rate 1e-4 --output smoke.json
"""

from __future__ import annotations

import sys

from repro.experiments.sweep import ResultCache, SweepRunner
from repro.faults.campaign import DEFAULT_RATES, run_campaign
from repro.obs import ObsSpec
from repro.util.cli import build_parser, install_sigpipe_handler, print_unknown

__all__ = ["main"]

_COMMANDS = ("campaign", "smoke")


def _parse_int_list(text: str, what: str) -> list[int]:
    try:
        return [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise SystemExit(f"invalid {what} list: {text!r}")


def _parse_float_list(text: str, what: str) -> list[float]:
    try:
        return [float(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise SystemExit(f"invalid {what} list: {text!r}")


def build_faults_parser():
    """The ``ksr-faults`` argument parser (module-level for tests)."""
    parser = build_parser(
        "ksr-faults",
        "Resilience campaigns for the simulated KSR-1: sweep fault rates "
        "against the paper's lock workload and report the degradation.",
        positional="command",
        positional_help=f"one of: {', '.join(_COMMANDS)}",
    )
    parser.add_argument(
        "--processors", default="8,16,32", metavar="P1,P2,...",
        help="processor counts to sweep (default: %(default)s)",
    )
    parser.add_argument(
        "--fault-rates", default=",".join(str(r) for r in DEFAULT_RATES),
        metavar="R1,R2,...",
        help="per-packet corruption rates (default: %(default)s)",
    )
    parser.add_argument(
        "--fault-rate", type=float, default=1e-4, metavar="R",
        help="single fault rate for `smoke` (default: %(default)s)",
    )
    parser.add_argument(
        "--ops", type=int, default=30,
        help="lock operations per processor (default: %(default)s)",
    )
    parser.add_argument(
        "--seed", type=int, default=303,
        help="master seed for every point (default: %(default)s)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the sweep (default: %(default)s)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="recompute every point, ignoring the result cache",
    )
    parser.add_argument(
        "--format", choices=("summary", "json"), default="summary",
        help="stdout format (default: %(default)s)",
    )
    parser.add_argument(
        "--trace-dir", metavar="DIR",
        help="write one Chrome trace per point into DIR",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``ksr-faults`` console script."""
    install_sigpipe_handler()
    parser = build_faults_parser()
    args = parser.parse_args(argv)
    if args.list:
        for command in _COMMANDS:
            print(command)
        return 0
    if not args.command:
        parser.print_usage(sys.stderr)
        return 2
    command = args.command[0]
    if command not in _COMMANDS:
        return print_unknown([command], "command")
    cache = None if args.no_cache else ResultCache.default()
    runner = SweepRunner(jobs=args.jobs, cache=cache)
    proc_counts = _parse_int_list(args.processors, "processor")
    if command == "smoke":
        proc_counts = proc_counts[:1]
        fault_rates = [0.0, args.fault_rate]
        ops = min(args.ops, 10)
    else:
        fault_rates = _parse_float_list(args.fault_rates, "fault rate")
        ops = args.ops
    campaign = run_campaign(
        proc_counts,
        fault_rates,
        ops=ops,
        seed=args.seed,
        runner=runner,
        obs=ObsSpec(),
        trace_dir=args.trace_dir,
    )
    if args.format == "json":
        sys.stdout.write(campaign.to_json())
    else:
        print(campaign.render())
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(campaign.to_json())
        print(f"summary written to {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - console entry
    raise SystemExit(main())
