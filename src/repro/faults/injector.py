"""Deterministic fault injection for a :class:`~repro.machine.ksr.KsrMachine`.

The injector turns a :class:`~repro.faults.plan.FaultPlan` into hooks on
the seams the machine exposes (`SlottedRing.fault_hook`,
``SlottedRing.fault_jitter``, ``Cell.fault_delay``,
``RingHierarchy.fault_injector``).  Three invariants govern the design:

* **Own RNG streams.**  Every fault draw comes from sub-streams under
  ``faults/<seed_salt>/…`` of the machine's :class:`SeedStream`, so the
  workload's randomness (cache replacement, jitter, timers) is never
  perturbed: a faulty run and a clean run of the same seed see the same
  workload draws.
* **Zero plan == no injector.**  A plan whose :attr:`FaultPlan.is_zero`
  is true installs *no* hooks at all; the machine runs the exact code
  path (and event/RNG history) it would without an injector.  Pinned by
  ``tests/faults/test_determinism.py``.
* **Faults cost real bandwidth.**  A corruption retry claims a real
  ring slot; a stalled responder makes the requester burn probe packets
  on its leaf ring; a dead cell adds bypass latency to every packet on
  its ring.  Degradation therefore *compounds* under load instead of
  being a flat latency tax.

Fault models (see DESIGN.md §10 for the hardware rationale):

``corruption_rate``
    Each slot delivery is corrupted with probability *p* (CRC-detected
    at the receiver).  The sender retries with linear backoff, claiming
    a fresh slot each time; after ``max_retries`` failures the
    transaction resolves ``TIMED_OUT`` (delivered by the recovery
    layer, at the last attempt's completion time).
``stall_rate``
    Cells enter transient stall windows (exponential gaps, fixed
    width).  A stalled cell makes no forward progress — its generator
    resumptions are deferred to the window end — and requests *to* a
    stalled cell are gated until it wakes, with the requester
    re-issuing probe packets every ``request_timeout_cycles``.
``slot_jitter_cycles``
    Degraded slot arbitration: every grant suffers extra uniform
    jitter, modeling a marginal ring interface.
``dead_cells``
    Permanent cell death.  The ring bypasses the dead interface at
    ``bypass_hop_cycles`` per dead cell per traversed ring; threads
    cannot be placed on dead cells.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, fields
from typing import Any, Optional

from repro.errors import ConfigError, SimulationError
from repro.faults.plan import FaultPlan
from repro.ring.hierarchy import PathTiming
from repro.ring.slotted_ring import SlottedRing, TransactionOutcome

__all__ = ["FAULT_TOTAL_KEYS", "FaultCounters", "FaultInjector"]


@dataclass
class FaultCounters:
    """Machine-wide fault tallies for one attached injector.

    Values are coerced to ``float`` by :meth:`snapshot` so a zero-fault
    snapshot is byte-identical (under pickle) to the all-zero dict an
    observer builds for a machine with no injector at all.
    """

    corrupted_packets: int = 0
    retries: int = 0
    timeouts: int = 0
    bypass_hops: int = 0
    stall_cycles: float = 0.0

    def snapshot(self) -> dict[str, float]:
        """Plain-dict copy, every value a float (see class docstring)."""
        return {f.name: float(getattr(self, f.name)) for f in fields(self)}


#: Key set of :meth:`FaultCounters.snapshot`, exported so
#: :mod:`repro.obs.probes` can build the matching all-zero dict for
#: machines without an injector.
FAULT_TOTAL_KEYS = tuple(f.name for f in fields(FaultCounters))


class FaultInjector:
    """Wires a :class:`FaultPlan` into one machine's fault seams.

    Usage::

        injector = FaultInjector(plan)
        injector.attach(machine)   # before Observer.attach
        ... run workload ...
        injector.counters.snapshot()

    One injector serves one machine; :meth:`attach` refuses double
    attachment in either direction.  :attr:`probe` (duck-typed
    :class:`repro.obs.series.MachineSeries`) is wired by the observer
    and receives ``on_fault(time, channel, n)`` per injected fault.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.counters = FaultCounters()
        #: Observability sink with ``on_fault(time, channel, n)``;
        #: wired by :meth:`repro.obs.probes.Observer.attach`.
        self.probe: Optional[Any] = None
        self._machine: Optional[Any] = None
        # Stall bookkeeping: per-cell lazily extended window lists.
        self._stall_rngs: dict[int, Any] = {}
        self._stall_starts: dict[int, list[float]] = {}
        self._stall_ends: dict[int, list[float]] = {}
        # Per-ring dead-cell counts (bypass hops), filled on attach.
        self._dead_per_ring: dict[int, int] = {}
        # Scratch carried from before_transact to after_transact of the
        # same (synchronous) hierarchy.transact call.
        self._pending_retries = 0
        self._pending_timeout = False

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach(self, machine: Any) -> "FaultInjector":
        """Install the plan's hooks on ``machine``; returns ``self``.

        Attach *before* :meth:`repro.obs.Observer.attach` so the
        observer finds the injector and wires its fault probe.
        """
        if self._machine is not None:
            raise SimulationError("fault injector is already attached to a machine")
        if getattr(machine, "fault_injector", None) is not None:
            raise SimulationError("machine already has a fault injector attached")
        plan = self.plan
        n_cells = machine.config.n_cells
        bad = [c for c in plan.dead_cells if c >= n_cells]
        if bad:
            raise ConfigError(
                f"dead cells {bad} out of range on a {n_cells}-cell machine"
            )
        if len(plan.dead_cells) >= n_cells:
            raise ConfigError("a plan may not kill every cell of the machine")
        self._machine = machine
        machine.fault_injector = self
        seeds = machine.seeds.child(f"faults/{plan.seed_salt}")
        if plan.corruption_rate > 0.0:
            for ring in machine.hierarchy.all_rings:
                ring.fault_hook = self._make_corruption_hook(
                    seeds.rng(f"corrupt/{ring.label}")
                )
        if plan.slot_jitter_cycles > 0.0:
            for ring in machine.hierarchy.all_rings:
                ring.fault_jitter = self._make_jitter(
                    seeds.rng(f"jitter/{ring.label}")
                )
        if plan.stall_rate > 0.0:
            for cell in machine.cells:
                self._stall_rngs[cell.cell_id] = seeds.rng(f"stall/{cell.cell_id}")
                self._stall_starts[cell.cell_id] = []
                self._stall_ends[cell.cell_id] = []
                cell.fault_delay = self._make_cell_delay(cell)
        if plan.stall_rate > 0.0 or plan.dead_cells:
            ring_of = machine.hierarchy.ring_of
            for dead in plan.dead_cells:
                ring = ring_of(dead)
                self._dead_per_ring[ring] = self._dead_per_ring.get(ring, 0) + 1
            machine.hierarchy.fault_injector = self
        if not plan.is_zero:
            machine.protocol.fault_accounting = True
        return self

    def detach(self) -> None:
        """Remove every hook; the machine runs clean afterwards."""
        machine = self._machine
        if machine is None:
            return
        for ring in machine.hierarchy.all_rings:
            ring.fault_hook = None
            ring.fault_jitter = None
        for cell in machine.cells:
            cell.fault_delay = None
        machine.hierarchy.fault_injector = None
        machine.protocol.fault_accounting = False
        machine.fault_injector = None
        self._machine = None
        self._stall_rngs.clear()
        self._stall_starts.clear()
        self._stall_ends.clear()
        self._dead_per_ring.clear()

    # ------------------------------------------------------------------
    # Ring packet corruption (CRC detect -> bounded retry with backoff)
    # ------------------------------------------------------------------

    def _make_corruption_hook(self, rng: Any):
        plan = self.plan
        p = plan.corruption_rate
        max_retries = plan.max_retries
        backoff = plan.retry_backoff_cycles
        counters = self.counters

        def hook(
            ring: SlottedRing, subring: int, completed: float, attempt: int
        ) -> Any:
            # One draw per delivery attempt, corrupted or not, so the
            # stream is a pure function of the attempt sequence.
            if rng.random() >= p:
                return None
            counters.corrupted_packets += 1
            probe = self.probe
            if probe is not None:
                probe.on_fault(completed, "fault_corrupted")
            if attempt > max_retries:
                counters.timeouts += 1
                if probe is not None:
                    probe.on_fault(completed, "fault_timeouts")
                return TransactionOutcome.TIMED_OUT
            counters.retries += 1
            if probe is not None:
                probe.on_fault(completed, "fault_retries")
            # Linear backoff: the k-th retry re-claims a slot k backoff
            # intervals after the corrupted delivery.
            return completed + backoff * attempt

        return hook

    # ------------------------------------------------------------------
    # Degraded slot arbitration
    # ------------------------------------------------------------------

    def _make_jitter(self, rng: Any):
        width = 2.0 * self.plan.slot_jitter_cycles

        def jitter() -> float:
            return float(rng.random() * width)

        return jitter

    # ------------------------------------------------------------------
    # Transient cell stalls
    # ------------------------------------------------------------------

    def _stall_end(self, cell_id: int, at: float) -> Optional[float]:
        """End of the stall window covering ``at``, or ``None``.

        Windows are generated lazily in time order from the cell's own
        stream, so the draw sequence is independent of query order.
        """
        starts = self._stall_starts[cell_id]
        ends = self._stall_ends[cell_id]
        rng = self._stall_rngs[cell_id]
        mean_gap = 1.0 / self.plan.stall_rate
        width = self.plan.stall_cycles
        while not starts or starts[-1] <= at:
            prev_end = ends[-1] if ends else 0.0
            start = prev_end + float(rng.exponential(mean_gap))
            starts.append(start)
            ends.append(start + width)
        i = bisect_right(starts, at) - 1
        if i >= 0 and at < ends[i]:
            return ends[i]
        return None

    def _make_cell_delay(self, cell: Any):
        counters = self.counters
        cell_id = cell.cell_id
        perfmon = cell.perfmon

        def delay(at: float) -> float:
            end = self._stall_end(cell_id, at)
            if end is None:
                return at
            counters.stall_cycles += end - at
            perfmon.fault_stall_cycles += end - at
            return end

        return delay

    # ------------------------------------------------------------------
    # Hierarchy bracket: responder stalls in, dead-cell bypass out
    # ------------------------------------------------------------------

    def before_transact(
        self, now: float, src_cell: int, dst_cell: Optional[int], subpage_id: int
    ) -> float:
        """Gate a request on the responder's stall windows.

        While the responder sleeps the requester's timeout fires every
        ``request_timeout_cycles``; each expiry (up to ``max_retries``)
        re-issues a probe packet that claims a real slot on the source
        leaf ring.  Past the budget the path is marked ``TIMED_OUT``
        (merged into the timing by :meth:`after_transact`); delivery
        still lands when the responder wakes, so runs always terminate.
        """
        self._pending_retries = 0
        self._pending_timeout = False
        plan = self.plan
        if plan.stall_rate == 0.0 or dst_cell is None:
            return now
        end = self._stall_end(dst_cell, now)
        if end is None:
            return now
        machine = self._machine
        waited = end - now
        n_expiries = int(waited // plan.request_timeout_cycles)
        n_probes = min(n_expiries, plan.max_retries)
        if n_probes:
            src_ring = machine.hierarchy.leaf_rings[
                machine.hierarchy.ring_of(src_cell)
            ]
            counters = self.counters
            probe = self.probe
            for i in range(n_probes):
                at = now + (i + 1) * plan.request_timeout_cycles
                src_ring.transact(at, subpage_id, overhead_cycles=0.0)
                counters.retries += 1
                counters.timeouts += 1
                if probe is not None:
                    probe.on_fault(at, "fault_retries")
                    probe.on_fault(at, "fault_timeouts")
        self._pending_retries = n_probes
        self._pending_timeout = n_expiries > plan.max_retries
        return end

    def after_transact(
        self, timing: PathTiming, src_cell: int, dst_cell: Optional[int]
    ) -> PathTiming:
        """Charge dead-cell bypass hops and merge stall-gate results."""
        dead = self._dead_per_ring
        hops = 0
        if dead:
            machine = self._machine
            src_ring = machine.hierarchy.ring_of(src_cell)
            hops = dead.get(src_ring, 0)
            if timing.crossed_rings and dst_cell is not None:
                hops += dead.get(machine.hierarchy.ring_of(dst_cell), 0)
        if hops:
            timing.completed_at += hops * self.plan.bypass_hop_cycles
            timing.bypass_hops = hops
            self.counters.bypass_hops += hops
            if self.probe is not None:
                self.probe.on_fault(
                    timing.completed_at, "fault_bypass_hops", float(hops)
                )
        if self._pending_retries:
            timing.retries += self._pending_retries
            self._pending_retries = 0
        if self._pending_timeout:
            timing.outcome = TransactionOutcome.TIMED_OUT
            self._pending_timeout = False
        return timing
