"""Resilience campaigns: fault rate x processor sweeps.

A campaign re-runs the paper's figure-3 lock workload (the most
ring-sensitive simulated experiment in the suite) across a grid of
processor counts and per-packet corruption rates, reporting how the
machine's time, retry traffic and timeout incidence degrade.  Points
run through a :class:`~repro.experiments.sweep.SweepRunner`, so
``--jobs N`` fans the grid across worker processes and the result cache
(keyed on the :attr:`~repro.faults.FaultPlan.cache_token`) makes
re-renders free.

All output paths are deterministic: the summary JSON is serialized with
sorted keys and fixed separators, so two runs of the same campaign —
whatever the job count — produce byte-identical artifacts (pinned by
``tests/faults/test_determinism.py``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.experiments.base import ExperimentResult
from repro.experiments.degraded import degraded_lock_point
from repro.experiments.sweep import SweepRunner
from repro.faults.plan import FaultPlan
from repro.obs import ObsSpec
from repro.obs.export import point_slug, write_chrome_trace

__all__ = ["CampaignResult", "build_campaign_calls", "assemble_campaign", "run_campaign"]

#: Default per-packet corruption rates swept by ``ksr-faults campaign``.
DEFAULT_RATES = (0.0, 1e-5, 1e-4, 1e-3)


@dataclass
class CampaignResult:
    """One campaign's table plus the per-point fault tallies."""

    result: ExperimentResult
    #: ``(n_procs, fault_rate) -> {"seconds": ..., "retries": ..., ...}``
    points: dict[tuple[int, float], dict[str, float]] = field(default_factory=dict)

    def to_json(self) -> str:
        """Deterministic JSON document (sorted keys, fixed separators)."""
        doc = {
            "experiment": self.result.experiment_id,
            "title": self.result.title,
            "headers": self.result.headers,
            "rows": self.result.rows,
            "notes": self.result.notes,
            "points": [
                {"n_procs": p, "fault_rate": r, **stats}
                for (p, r), stats in sorted(self.points.items())
            ],
        }
        return json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"

    def render(self) -> str:
        """Plain-text report (the table plus notes)."""
        return self.result.render()


def build_campaign_calls(
    proc_counts: list[int],
    fault_rates: list[float],
    *,
    ops: int = 30,
    seed: int = 303,
    obs: ObsSpec | None = None,
) -> list[dict]:
    """The campaign grid as independent, cacheable point calls.

    Split out of :func:`run_campaign` so the serving layer can batch a
    campaign's points into :class:`SweepRunner` fan-outs (and pin their
    cache keys) exactly like any other sweep, then assemble the table
    with :func:`assemble_campaign`.
    """
    calls = [
        dict(kind="rw", n_procs=p, read_fraction=0.0, ops=ops, seed=seed,
             plan=FaultPlan(corruption_rate=r))
        for p in proc_counts
        for r in fault_rates
    ]
    if obs is not None:
        for call in calls:
            call["obs"] = obs
    return calls


def run_campaign(
    proc_counts: list[int] | None = None,
    fault_rates: list[float] | None = None,
    *,
    ops: int = 30,
    seed: int = 303,
    runner: SweepRunner | None = None,
    obs: ObsSpec | None = None,
    trace_dir: str | None = None,
) -> CampaignResult:
    """Sweep the lock workload over processors x corruption rates.

    ``trace_dir`` (implies a default ``obs``) writes one Chrome trace
    per point without changing the table.
    """
    if proc_counts is None:
        proc_counts = [8, 16, 32]
    if fault_rates is None:
        fault_rates = list(DEFAULT_RATES)
    if runner is None:
        runner = SweepRunner()
    if trace_dir is not None and obs is None:
        obs = ObsSpec()
    calls = build_campaign_calls(proc_counts, fault_rates, ops=ops, seed=seed, obs=obs)
    points = runner.map(degraded_lock_point, calls)
    return assemble_campaign(
        proc_counts, fault_rates, calls, points, ops=ops, trace_dir=trace_dir
    )


def assemble_campaign(
    proc_counts: list[int],
    fault_rates: list[float],
    calls: list[dict],
    points: list,
    *,
    ops: int = 30,
    trace_dir: str | None = None,
) -> CampaignResult:
    """Fold computed points back into the campaign table + tallies.

    ``calls``/``points`` must be aligned and ordered as produced by
    :func:`build_campaign_calls` (processors outer, rates inner).
    """
    result = ExperimentResult(
        experiment_id="FAULTS",
        title=f"Lock workload resilience, {ops} ops/processor",
        headers=[
            "P", "fault rate", "seconds", "slowdown",
            "retries", "timeouts", "corrupted", "ring tx",
        ],
    )
    campaign = CampaignResult(result=result)
    it = iter(zip(calls, points))
    for p in proc_counts:
        baseline = None
        for r in fault_rates:
            call, point = next(it)
            ring_tx = (
                point.capture.totals["ring_transactions"]
                if point.capture is not None
                else 0.0
            )
            if baseline is None:
                baseline = point.seconds
            slowdown = point.seconds / baseline if baseline else 1.0
            stats = {
                "seconds": point.seconds,
                "slowdown": slowdown,
                "retries": point.fault("retries"),
                "timeouts": point.fault("timeouts"),
                "corrupted": point.fault("corrupted_packets"),
                "ring_tx": ring_tx,
            }
            campaign.points[(p, r)] = stats
            result.add_row([
                p, r, point.seconds, slowdown,
                point.fault("retries"), point.fault("timeouts"),
                point.fault("corrupted_packets"), ring_tx,
            ])
            result.add_series_point(f"p={r:g}" if r else "clean", p, point.seconds)
            if trace_dir is not None and point.capture is not None:
                # The fault rate lives inside the (non-scalar) plan, so
                # the slug alone would collide across rates.
                rate_slug = str(r).replace(".", "p").replace("-", "m")
                name = f"faults_rate-{rate_slug}_{point_slug(call)}.trace.json"
                write_chrome_trace(Path(trace_dir) / name, [point.capture])
    worst_rate = max(fault_rates)
    if worst_rate > 0 and proc_counts:
        p_last = proc_counts[-1]
        s = campaign.points[(p_last, worst_rate)]
        result.notes.append(
            f"at P={p_last}, rate {worst_rate:g}: slowdown {s['slowdown']:.3f}x, "
            f"{int(s['retries'])} retries, {int(s['timeouts'])} timeouts"
        )
    return campaign
