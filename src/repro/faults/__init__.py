"""Deterministic fault injection and degraded-mode modeling.

The subsystem has three layers:

* :mod:`repro.faults.plan` — :class:`FaultPlan`, a frozen description
  of a fault scenario (rates, budgets, dead hardware) with a stable
  :attr:`~FaultPlan.cache_token` for result caching.
* :mod:`repro.faults.injector` — :class:`FaultInjector`, which wires a
  plan into a machine's fault seams using its own named RNG streams so
  workload draws are never perturbed.  A zero plan installs no hooks:
  the run is bit-identical to one with no injector.
* :mod:`repro.faults.campaign` / :mod:`repro.faults.cli` — the
  ``ksr-faults`` resilience-campaign runner (fault rate x processor
  sweeps over the paper's figure-3 lock workload).  Imported lazily by
  the CLI entry point, never from here, to keep the core importable by
  :mod:`repro.obs` without a cycle.
"""

from repro.faults.injector import FAULT_TOTAL_KEYS, FaultCounters, FaultInjector
from repro.faults.plan import INJECTOR_VERSION, FaultPlan

__all__ = [
    "FAULT_TOTAL_KEYS",
    "FaultCounters",
    "FaultInjector",
    "FaultPlan",
    "INJECTOR_VERSION",
]
