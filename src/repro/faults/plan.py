"""Declarative fault scenarios (:class:`FaultPlan`).

A plan is a frozen value object describing *what can go wrong* on the
simulated machine; the :class:`repro.faults.injector.FaultInjector`
turns it into hooks on the ring/cell seams.  Keeping the plan pure data
gives three properties the experiments lean on:

* **Reproducibility** — a ``(master_seed, plan)`` pair fully determines
  every injected fault; ``seed_salt`` lets one machine seed explore
  independent fault draws.
* **Cache keying** — :attr:`FaultPlan.cache_token` hashes the plan
  together with :data:`INJECTOR_VERSION`, so the sweep-runner result
  cache (:mod:`repro.experiments.sweep`) distinguishes plans and
  invalidates stale entries when the injector's semantics change.
* **Zero-fault identity** — :attr:`FaultPlan.is_zero` is checked by the
  injector: a zero plan installs *no* hooks, so attaching it is
  bit-identical to not attaching an injector at all (pinned by
  ``tests/faults/test_determinism.py``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields

from repro.errors import ConfigError

__all__ = ["FaultPlan", "INJECTOR_VERSION"]

#: Bumped whenever the injector's *semantics* change (not just rates),
#: so cached experiment results from older injectors never alias new
#: ones.  Part of :attr:`FaultPlan.cache_token`.
INJECTOR_VERSION = 1


@dataclass(frozen=True)
class FaultPlan:
    """One fault scenario: rates, budgets and dead hardware.

    All rates are per-event probabilities; all durations are CPU cycles
    of the simulated machine.  The default-constructed plan is the
    zero plan: nothing ever fails.
    """

    #: Probability that a ring packet is delivered corrupted (detected
    #: by CRC at the receiver, triggering a retry of that leg).
    corruption_rate: float = 0.0
    #: Retry budget per ring leg / stalled-responder request; once
    #: exhausted the transaction resolves ``TIMED_OUT``.
    max_retries: int = 8
    #: Linear backoff between corruption retries: retry ``k`` re-claims
    #: a slot ``k * retry_backoff_cycles`` after the corrupted delivery.
    retry_backoff_cycles: float = 64.0
    #: Rate (per cycle, exponential gaps) at which a cell enters a
    #: transient stall window and goes silent.
    stall_rate: float = 0.0
    #: Length of one transient stall window.
    stall_cycles: float = 5000.0
    #: Requester-side timeout: while a responder is stalled, the
    #: requester re-issues a probe packet every this-many cycles.
    request_timeout_cycles: float = 2000.0
    #: Degraded slot arbitration: extra uniform(0, 2x) jitter added to
    #: every slot grant (mean ``slot_jitter_cycles``).
    slot_jitter_cycles: float = 0.0
    #: Permanently dead cells; packets route past them with
    #: ``bypass_hop_cycles`` per dead cell on the traversed ring, and
    #: threads may not be placed on them.
    dead_cells: tuple[int, ...] = ()
    #: Added latency per dead cell bypassed on a traversed ring.
    bypass_hop_cycles: float = 8.0
    #: Decouples the fault RNG streams from the machine seed: same
    #: machine, same workload, independent fault draws per salt.
    seed_salt: int = 0

    def __post_init__(self) -> None:
        for name in ("corruption_rate", "stall_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ConfigError(f"{name} must be in [0, 1), got {rate}")
        if self.max_retries < 1:
            raise ConfigError(f"max_retries must be >= 1, got {self.max_retries}")
        for name in (
            "retry_backoff_cycles",
            "stall_cycles",
            "request_timeout_cycles",
            "bypass_hop_cycles",
        ):
            cycles = getattr(self, name)
            if cycles <= 0:
                raise ConfigError(f"{name} must be positive, got {cycles}")
        if self.slot_jitter_cycles < 0:
            raise ConfigError(
                f"slot_jitter_cycles must be >= 0, got {self.slot_jitter_cycles}"
            )
        if any(c < 0 for c in self.dead_cells):
            raise ConfigError(f"dead_cells must be non-negative: {self.dead_cells}")
        object.__setattr__(
            self, "dead_cells", tuple(sorted(dict.fromkeys(self.dead_cells)))
        )

    @property
    def is_zero(self) -> bool:
        """True when this plan can never inject a fault.

        ``max_retries`` and the cycle budgets are irrelevant when no
        fault source is enabled, so they do not disqualify a plan.
        """
        return (
            self.corruption_rate == 0.0
            and self.stall_rate == 0.0
            and self.slot_jitter_cycles == 0.0
            and not self.dead_cells
        )

    @property
    def cache_token(self) -> str:
        """Stable identity for result caching (see module docstring)."""
        digest = hashlib.sha256(repr(self).encode("utf-8")).hexdigest()[:16]
        return f"faultplan-v{INJECTOR_VERSION}-{digest}"

    def describe(self) -> str:
        """Human-oriented one-liner listing only the non-default knobs."""
        if self.is_zero:
            return "FaultPlan(zero)"
        parts = []
        for f in fields(self):
            value = getattr(self, f.name)
            if value != f.default:
                parts.append(f"{f.name}={value}")
        return f"FaultPlan({', '.join(parts)})"
