"""The per-cell hardware performance monitor.

"Each node in the KSR-1 has a hardware performance monitor that gives
useful information such as the number of sub-cache and local-cache
misses and the time spent in ring accesses.  We used this piece of
hardware quite extensively in our measurements."  — the paper, §2.

The simulator exposes the same counters; the experiment harness uses
them exactly as the authors did (e.g. confirming that CG's poor
absolute MFLOPS come from cache misses, or that IS's remote latencies
climb with processor count).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Iterable

__all__ = ["PerfMonitor"]


@dataclass
class PerfMonitor:
    """Event counters for one cell.

    All counters are cumulative since construction or the last
    :meth:`reset`.  ``ring_wait_cycles`` isolates time spent queueing
    for a free slot — the quantity that reveals ring saturation.
    """

    subcache_hits: int = 0
    subcache_misses: int = 0
    subcache_block_allocs: int = 0
    local_cache_hits: int = 0
    local_cache_misses: int = 0
    local_cache_page_allocs: int = 0
    ring_transactions: int = 0
    ring_cycles: float = 0.0
    ring_wait_cycles: float = 0.0
    inter_ring_transactions: int = 0
    invalidations_sent: int = 0
    invalidations_received: int = 0
    snarfs: int = 0
    poststores: int = 0
    prefetches: int = 0
    get_subpage_attempts: int = 0
    get_subpage_retries: int = 0
    spin_wakeups: float = 0.0
    compute_cycles: float = 0.0
    stall_cycles: float = 0.0
    timer_interrupts: int = 0
    timer_cycles: float = 0.0
    # Fault-layer counters (repro.faults): zero on fault-free machines.
    ring_retries: int = 0
    ring_timeouts: int = 0
    ring_bypass_hops: int = 0
    fault_stall_cycles: float = 0.0

    def reset(self) -> None:
        """Zero every counter."""
        for f in fields(self):
            setattr(self, f.name, type(getattr(self, f.name))(0))

    def snapshot(self) -> dict[str, float]:
        """A plain-dict copy of all counters."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def __add__(self, other: "PerfMonitor") -> "PerfMonitor":
        """Aggregate two monitors (used to sum over cells)."""
        total = PerfMonitor()
        for f in fields(self):
            setattr(total, f.name, getattr(self, f.name) + getattr(other, f.name))
        return total

    @classmethod
    def aggregate(cls, monitors: Iterable["PerfMonitor"]) -> "PerfMonitor":
        """Sum any number of monitors into a machine-wide total.

        The canonical way to form machine totals; an empty iterable
        yields a zeroed monitor.
        """
        total = cls()
        for mon in monitors:
            for f in fields(total):
                setattr(total, f.name, getattr(total, f.name) + getattr(mon, f.name))
        return total

    @property
    def total_memory_accesses(self) -> int:
        """Sub-cache accesses (hits plus misses)."""
        return self.subcache_hits + self.subcache_misses

    @property
    def avg_ring_latency(self) -> float:
        """Average cycles per ring transaction (0 when none occurred)."""
        if self.ring_transactions == 0:
            return 0.0
        return self.ring_cycles / self.ring_transactions

    @property
    def subcache_miss_rate(self) -> float:
        """Sub-cache misses per access (0 when nothing was accessed)."""
        accesses = self.total_memory_accesses
        return self.subcache_misses / accesses if accesses else 0.0

    @property
    def local_miss_rate(self) -> float:
        """Local-cache misses per local-cache access (0 when none)."""
        accesses = self.local_cache_hits + self.local_cache_misses
        return self.local_cache_misses / accesses if accesses else 0.0

    def derived(self) -> dict[str, float]:
        """The derived ratios the paper reads off the monitor.

        Keys: ``subcache_miss_rate``, ``local_miss_rate``,
        ``avg_ring_latency`` and ``ring_wait_fraction`` (share of ring
        time spent queueing for a slot — the saturation signal).
        """
        wait_frac = self.ring_wait_cycles / self.ring_cycles if self.ring_cycles else 0.0
        return {
            "subcache_miss_rate": self.subcache_miss_rate,
            "local_miss_rate": self.local_miss_rate,
            "avg_ring_latency": self.avg_ring_latency,
            "ring_wait_fraction": wait_frac,
        }

    def diff(self, earlier: "PerfMonitor") -> "PerfMonitor":
        """Counters accumulated since ``earlier`` (a snapshot copy)."""
        delta = PerfMonitor()
        for f in fields(self):
            setattr(delta, f.name, getattr(self, f.name) - getattr(earlier, f.name))
        return delta

    def copy(self) -> "PerfMonitor":
        """An independent copy (for before/after measurements)."""
        clone = PerfMonitor()
        for f in fields(self):
            setattr(clone, f.name, getattr(self, f.name))
        return clone
