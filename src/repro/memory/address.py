"""Address arithmetic and segment translation.

The KSR exposes one global *System Virtual Address* (SVA) space; each
process sees a private *Context Address* (CA) space mapped onto SVA
segments through Segment Translation Tables (STT).  The simulator's
workloads allocate directly in SVA (the shared-memory API hands out SVA
ranges), but the STT machinery is modelled because the paper describes
it as part of the architecture; ``tests/memory/test_address.py``
exercises it.

Granularities (bytes): word 8, sub-block 64, subpage 128, block 2 K,
page 16 K — see :mod:`repro.machine.config`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MemoryModelError
from repro.machine.config import (
    BLOCK_BYTES,
    PAGE_BYTES,
    SUBBLOCK_BYTES,
    SUBPAGE_BYTES,
    WORD_BYTES,
)

__all__ = [
    "word_of",
    "subblock_of",
    "subpage_of",
    "block_of",
    "page_of",
    "subpage_base",
    "align_up",
    "Segment",
    "SegmentTranslationTable",
    "ContextAddressSpace",
]


def word_of(addr: int) -> int:
    """Index of the 64-bit word containing byte address ``addr``."""
    return addr // WORD_BYTES


def subblock_of(addr: int) -> int:
    """Index of the 64-byte sub-block containing ``addr``."""
    return addr // SUBBLOCK_BYTES


def subpage_of(addr: int) -> int:
    """Index of the 128-byte subpage containing ``addr`` — the unit of
    coherence and ring transfer."""
    return addr // SUBPAGE_BYTES


def block_of(addr: int) -> int:
    """Index of the 2 KB block containing ``addr`` — the unit of
    allocation in the sub-cache."""
    return addr // BLOCK_BYTES


def page_of(addr: int) -> int:
    """Index of the 16 KB page containing ``addr`` — the unit of
    allocation in the local cache."""
    return addr // PAGE_BYTES


def subpage_base(subpage_id: int) -> int:
    """Byte address of the start of subpage ``subpage_id``."""
    return subpage_id * SUBPAGE_BYTES


def align_up(addr: int, alignment: int) -> int:
    """Smallest multiple of ``alignment`` that is >= ``addr``."""
    if alignment <= 0:
        raise MemoryModelError(f"alignment must be positive, got {alignment}")
    return -(-addr // alignment) * alignment


@dataclass(frozen=True)
class Segment:
    """One STT entry: a CA range mapped to an SVA range."""

    ca_base: int
    size: int
    sva_base: int
    writable: bool = True

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise MemoryModelError("segment size must be positive")
        if self.ca_base < 0 or self.sva_base < 0:
            raise MemoryModelError("segment bases must be non-negative")

    def contains(self, ca: int) -> bool:
        """Whether context address ``ca`` falls inside this segment."""
        return self.ca_base <= ca < self.ca_base + self.size

    def translate(self, ca: int) -> int:
        """Map a context address in this segment to its SVA."""
        if not self.contains(ca):
            raise MemoryModelError(f"CA 0x{ca:x} not in segment {self}")
        return self.sva_base + (ca - self.ca_base)


@dataclass
class SegmentTranslationTable:
    """Per-context list of segments, searched in insertion order.

    Overlapping CA ranges are rejected at :meth:`map` time so lookup is
    unambiguous.
    """

    segments: list[Segment] = field(default_factory=list)

    def map(self, ca_base: int, size: int, sva_base: int, writable: bool = True) -> Segment:
        """Install a mapping; rejects CA overlap with existing segments."""
        new = Segment(ca_base, size, sva_base, writable)
        for seg in self.segments:
            if ca_base < seg.ca_base + seg.size and seg.ca_base < ca_base + size:
                raise MemoryModelError(
                    f"CA range [0x{ca_base:x}, +0x{size:x}) overlaps segment {seg}"
                )
        self.segments.append(new)
        return new

    def lookup(self, ca: int) -> Segment:
        """The segment containing ``ca`` (raises if unmapped)."""
        for seg in self.segments:
            if seg.contains(ca):
                return seg
        raise MemoryModelError(f"CA 0x{ca:x} is unmapped in this context")

    def translate(self, ca: int, *, for_write: bool = False) -> int:
        """CA → SVA, enforcing segment write permission."""
        seg = self.lookup(ca)
        if for_write and not seg.writable:
            raise MemoryModelError(f"write to read-only segment at CA 0x{ca:x}")
        return seg.translate(ca)


@dataclass
class ContextAddressSpace:
    """A process's view of memory: an STT plus a simple CA allocator."""

    stt: SegmentTranslationTable = field(default_factory=SegmentTranslationTable)
    _next_ca: int = 0

    def attach(self, sva_base: int, size: int, *, writable: bool = True) -> int:
        """Map an SVA range at the next free CA; returns the CA base."""
        ca_base = align_up(self._next_ca, SUBPAGE_BYTES)
        self.stt.map(ca_base, size, sva_base, writable)
        self._next_ca = ca_base + size
        return ca_base

    def translate(self, ca: int, *, for_write: bool = False) -> int:
        """CA → SVA through this context's STT."""
        return self.stt.translate(ca, for_write=for_write)
