"""Run-length-compressed subpage access streams.

The kernel-scale tier cannot afford one simulator event per word
access (CG touches millions of words per iteration), so kernels
describe their memory behaviour as *streams*: ordered sequences of
subpage touches, each carrying a weight = how many word accesses the
touch represents.  A sequential sweep of a 1 MB array compresses to
8192 touches of weight 16; a data-dependent gather (CG's ``x[col[k]]``)
compresses runs of equal subpages.

Streams feed :class:`repro.memory.analytic_cache.AnalyticCache` (miss
counts) and the phase cost model in :mod:`repro.kernels.costmodel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import MemoryModelError
from repro.machine.config import SUBPAGE_BYTES, WORD_BYTES

__all__ = ["AccessStream", "sequential", "strided", "gather", "concat"]

_WORDS_PER_SUBPAGE = SUBPAGE_BYTES // WORD_BYTES


@dataclass(frozen=True)
class AccessStream:
    """An ordered, compressed sequence of subpage touches.

    ``subpages``
        int64 array of subpage ids, in access order; consecutive
        entries are guaranteed distinct (run-length compressed).
    ``weights``
        int64 array of word accesses represented by each touch.
    ``write_fraction``
        Fraction of the represented word accesses that are writes
        (kept scalar: the paper's kernels read and write whole arrays
        per phase, so per-touch write flags add nothing).
    """

    subpages: np.ndarray
    weights: np.ndarray
    write_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.subpages.shape != self.weights.shape or self.subpages.ndim != 1:
            raise MemoryModelError("subpages and weights must be 1-D and congruent")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise MemoryModelError("write_fraction must be in [0, 1]")
        if self.subpages.size and np.any(self.subpages < 0):
            raise MemoryModelError("negative subpage id in stream")

    @property
    def n_touches(self) -> int:
        """Number of compressed subpage touches."""
        return int(self.subpages.size)

    @property
    def n_word_accesses(self) -> int:
        """Word accesses represented."""
        return int(self.weights.sum()) if self.weights.size else 0

    @property
    def n_distinct_subpages(self) -> int:
        """Distinct subpages touched (the footprint)."""
        return int(np.unique(self.subpages).size) if self.subpages.size else 0

    @property
    def footprint_bytes(self) -> int:
        """Bytes of distinct subpages touched."""
        return self.n_distinct_subpages * SUBPAGE_BYTES

    def repeated(self, times: int) -> "AccessStream":
        """The stream iterated ``times`` times back to back."""
        if times < 1:
            raise MemoryModelError("times must be >= 1")
        if times == 1 or self.subpages.size == 0:
            return self
        return _compress(
            np.tile(self.subpages, times),
            np.tile(self.weights, times),
            self.write_fraction,
        )

    def mapped(self, alloc_subpages: int) -> np.ndarray:
        """Allocation-unit ids of each touch (e.g. 16 KB pages:
        ``alloc_subpages = 128``), run-length compressed."""
        if alloc_subpages <= 0:
            raise MemoryModelError("alloc_subpages must be positive")
        units = self.subpages // alloc_subpages
        if units.size == 0:
            return units
        keep = np.empty(units.size, dtype=bool)
        keep[0] = True
        np.not_equal(units[1:], units[:-1], out=keep[1:])
        return units[keep]


def _compress(subpages: np.ndarray, weights: np.ndarray, write_fraction: float) -> AccessStream:
    """Merge consecutive equal subpage ids, summing weights."""
    subpages = np.ascontiguousarray(subpages, dtype=np.int64)
    weights = np.ascontiguousarray(weights, dtype=np.int64)
    if subpages.size == 0:
        return AccessStream(subpages, weights, write_fraction)
    boundary = np.empty(subpages.size, dtype=bool)
    boundary[0] = True
    np.not_equal(subpages[1:], subpages[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    out_ids = subpages[starts]
    out_weights = np.add.reduceat(weights, starts)
    return AccessStream(out_ids, out_weights, write_fraction)


def sequential(base_addr: int, n_words: int, *, write_fraction: float = 0.0) -> AccessStream:
    """A sequential sweep of ``n_words`` 64-bit words from ``base_addr``."""
    if n_words < 0:
        raise MemoryModelError("n_words must be non-negative")
    if n_words == 0:
        empty = np.empty(0, dtype=np.int64)
        return AccessStream(empty, empty.copy(), write_fraction)
    first_word = base_addr // WORD_BYTES
    words = np.arange(first_word, first_word + n_words, dtype=np.int64)
    subpages = words // _WORDS_PER_SUBPAGE
    return _compress(subpages, np.ones(n_words, dtype=np.int64), write_fraction)


def strided(
    base_addr: int,
    n_accesses: int,
    stride_words: int,
    *,
    write_fraction: float = 0.0,
) -> AccessStream:
    """``n_accesses`` word accesses at a fixed word stride (used by the
    latency experiments to force block/page-allocating patterns)."""
    if n_accesses < 0 or stride_words == 0:
        raise MemoryModelError("need non-negative count and nonzero stride")
    first_word = base_addr // WORD_BYTES
    words = first_word + stride_words * np.arange(n_accesses, dtype=np.int64)
    if words.size and words.min() < 0:
        raise MemoryModelError("strided access walked below address zero")
    subpages = words // _WORDS_PER_SUBPAGE
    return _compress(subpages, np.ones(n_accesses, dtype=np.int64), write_fraction)


def gather(
    base_addr: int,
    word_indices: np.ndarray | Sequence[int],
    *,
    write_fraction: float = 0.0,
) -> AccessStream:
    """Indexed accesses ``array[word_indices[k]]`` in order — the
    data-dependent pattern of CG's ``x[col_index]`` and IS's key
    scatter."""
    idx = np.ascontiguousarray(word_indices, dtype=np.int64)
    if idx.ndim != 1:
        raise MemoryModelError("word_indices must be 1-D")
    if idx.size and idx.min() < 0:
        raise MemoryModelError("negative gather index")
    first_word = base_addr // WORD_BYTES
    subpages = (first_word + idx) // _WORDS_PER_SUBPAGE
    return _compress(subpages, np.ones(idx.size, dtype=np.int64), write_fraction)


def concat(streams: Sequence[AccessStream]) -> AccessStream:
    """Concatenate streams in phase order (weighted-average write
    fraction)."""
    streams = [s for s in streams if s.n_touches]
    if not streams:
        empty = np.empty(0, dtype=np.int64)
        return AccessStream(empty, empty.copy(), 0.0)
    ids = np.concatenate([s.subpages for s in streams])
    weights = np.concatenate([s.weights for s in streams])
    total_words = sum(s.n_word_accesses for s in streams)
    wf = (
        sum(s.write_fraction * s.n_word_accesses for s in streams) / total_words
        if total_words
        else 0.0
    )
    return _compress(ids, weights, wf)
