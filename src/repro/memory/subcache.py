"""The first-level cache (sub-cache).

256 KB of data cache per cell, 2-way set associative, random
replacement; allocation in 2 KB blocks, fills in 64 B sub-blocks from
the local cache.  The instruction half of the sub-cache is not modelled
(the paper's experiments never miss on instructions).

The sub-cache holds *copies* of local-cache data and has no coherence
state of its own: when the coherence protocol invalidates a subpage in
the local cache, the corresponding sub-blocks must be purged here too
(:meth:`SubCache.drop_subpage`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.config import CacheConfig, SUBBLOCK_BYTES, SUBPAGE_BYTES
from repro.memory.cache_sets import SetAssociativeCache

__all__ = ["SubCacheAccess", "SubCache"]

_SUBBLOCKS_PER_SUBPAGE = SUBPAGE_BYTES // SUBBLOCK_BYTES


@dataclass(frozen=True)
class SubCacheAccess:
    """Outcome of a sub-cache word access."""

    hit: bool
    block_allocated: bool
    evicted_subblocks: tuple[int, ...] = ()


class SubCache:
    """Per-cell first-level cache, indexed by byte address."""

    def __init__(self, config: CacheConfig, rng: np.random.Generator):
        self._cache = SetAssociativeCache(config, rng)

    def access(self, addr: int) -> SubCacheAccess:
        """Touch the sub-block containing byte ``addr``."""
        result = self._cache.access(addr // SUBBLOCK_BYTES)
        return SubCacheAccess(
            hit=result.line_hit,
            block_allocated=result.frame_allocated,
            evicted_subblocks=result.evicted_lines,
        )

    def contains(self, addr: int) -> bool:
        """Whether the sub-block of ``addr`` is present."""
        return self._cache.contains_line(addr // SUBBLOCK_BYTES)

    def drop_subpage(self, subpage_id: int) -> None:
        """Purge both sub-blocks of an invalidated subpage."""
        first = subpage_id * _SUBBLOCKS_PER_SUBPAGE
        for sb in range(first, first + _SUBBLOCKS_PER_SUBPAGE):
            self._cache.drop_line(sb)

    @property
    def n_accesses(self) -> int:
        """Lifetime access count."""
        return self._cache.n_accesses

    @property
    def n_misses(self) -> int:
        """Lifetime sub-block miss count."""
        return self._cache.n_accesses - self._cache.n_line_hits

    @property
    def hit_rate(self) -> float:
        """Lifetime sub-block hit rate."""
        return self._cache.hit_rate
