"""Vectorized cache model for kernel-scale access streams.

This is a StatCache-style probabilistic model (Berg & Hagersten,
"StatCache: a probabilistic approach to efficient and accurate data
locality analysis") adapted to the KSR's two defining cache policies:

* **random replacement** — the model's core assumption is the machine's
  actual policy rather than an approximation of LRU;
* **allocation-unit frames** — KSR caches reserve whole 2 KB blocks /
  16 KB pages and only ever evict whole frames; individual lines are
  never displaced.  Capacity behaviour is therefore entirely a
  *frame-level* phenomenon, and sparse access patterns can thrash a
  32 MB cache with only 2048 resident subpages — the inefficiency the
  paper warns about for "algorithms that display less spatial
  locality".

Model
-----
Let ``F`` be the number of frames and ``S`` the number of sets.  A
frame miss needs an eviction only if the victim set is full; with ``W``
distinct frames in play the set occupancy is ~Poisson(``W/S``), giving
an eviction probability ``p_evict`` (1 when ``W >= F``).  A resident
frame then survives one frame miss with probability
``1 - p_evict / F``, and the frame-level miss ratio solves the
StatCache fixpoint

    m_f = (cold_f + sum_i 1 - (1 - p_evict/F)^(m_f * Tf_i)) / N_f

over the frame-touch stream's time distances ``Tf_i``.  A *line*
access hits iff the line was touched before and its frame survived the
interval, so the line-level miss probability reuses ``m_f`` scaled by
the stream's frame-touch rate.

Accuracy is validated against the exact event-level caches of
:mod:`repro.memory.cache_sets` in ``tests/memory/test_analytic_cache.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import MemoryModelError
from repro.machine.config import CacheConfig, SUBPAGE_BYTES
from repro.memory.streams import AccessStream

__all__ = [
    "CacheModelResult",
    "AnalyticCache",
    "time_distances",
    "fixpoint_miss_ratio",
    "set_full_probability",
]


def time_distances(ids: np.ndarray) -> tuple[np.ndarray, int]:
    """Per-access distance (in accesses) to the previous touch of the
    same id; cold (first) touches get distance -1.

    Returns ``(distances, n_cold)``.  Vectorized: group positions by id
    via a stable argsort, difference within groups.
    """
    ids = np.ascontiguousarray(ids)
    n = ids.size
    if n == 0:
        return np.empty(0, dtype=np.int64), 0
    order = np.argsort(ids, kind="stable")  # groups ids, positions ascending
    sorted_ids = ids[order]
    sorted_pos = order.astype(np.int64)
    prev = np.empty(n, dtype=np.int64)
    prev[1:] = np.where(sorted_ids[1:] == sorted_ids[:-1], sorted_pos[:-1], -1)
    prev[0] = -1
    dist_sorted = np.where(prev >= 0, sorted_pos - prev, -1)
    distances = np.empty(n, dtype=np.int64)
    distances[order] = dist_sorted
    n_cold = int(np.count_nonzero(distances < 0))
    return distances, n_cold


def set_full_probability(n_distinct: int, n_sets: int, ways: int, n_frames: int) -> float:
    """Probability that a frame allocation finds its set full.

    Distinct frames spread ~uniformly over sets; occupancy of one set
    is approximated as Poisson(``n_distinct / n_sets``) truncated by
    associativity.  Once the working set reaches the frame capacity the
    probability saturates at 1.
    """
    if n_distinct <= 0:
        return 0.0
    if n_distinct >= n_frames:
        return 1.0
    lam = n_distinct / n_sets
    # P(X >= ways) for X ~ Poisson(lam)
    term = math.exp(-lam)
    cdf = term
    for k in range(1, ways):
        term *= lam / k
        cdf += term
    return max(0.0, min(1.0, 1.0 - cdf))


def fixpoint_miss_ratio(
    distances: np.ndarray,
    n_cold: int,
    n_lines: int,
    *,
    evict_prob: float = 1.0,
    tol: float = 1e-6,
    max_iter: int = 200,
) -> tuple[float, np.ndarray]:
    """Solve the StatCache fixpoint for a random-replacement store of
    ``n_lines`` entries where each miss evicts a random resident entry
    with probability ``evict_prob``.

    Returns ``(miss_ratio, p_miss_per_access)``; cold touches have
    probability 1.
    """
    n = distances.size
    if n == 0:
        return 0.0, np.empty(0)
    if n_lines <= 0:
        raise MemoryModelError("cache must have at least one line")
    warm = distances >= 0
    t_warm = distances[warm].astype(np.float64)
    if evict_prob <= 0.0:
        p_miss = np.ones(n)
        p_miss[warm] = 0.0
        return n_cold / n, p_miss
    log_survive = math.log1p(-evict_prob / n_lines)
    m = n_cold / n  # start from compulsory misses only
    for _ in range(max_iter):
        p_miss_warm = -np.expm1(m * t_warm * log_survive)
        new_m = (n_cold + float(p_miss_warm.sum())) / n
        if abs(new_m - m) < tol:
            m = new_m
            break
        m = new_m
    p_miss = np.ones(n)
    p_miss[warm] = -np.expm1(m * t_warm * log_survive)
    return m, p_miss


@dataclass(frozen=True)
class CacheModelResult:
    """Expected behaviour of one stream against one cache level."""

    n_touches: int
    n_word_accesses: int
    expected_line_misses: float
    cold_line_misses: int
    expected_frame_allocs: float
    miss_ratio: float

    @property
    def expected_line_hits(self) -> float:
        """Touches that found their line present."""
        return self.n_touches - self.expected_line_misses

    @property
    def expected_word_hits(self) -> float:
        """Word accesses not requiring a fill (intra-touch repeats are
        guaranteed hits)."""
        return self.n_word_accesses - self.expected_line_misses


class AnalyticCache:
    """The model bound to one cache geometry.

    Streams are subpage-granular; for the sub-cache (64 B sub-blocks,
    half a subpage) a reported line miss corresponds to two sub-block
    fills — the cost model in :mod:`repro.kernels.costmodel` applies
    that factor, this class reports subpage-granular misses.
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        self.alloc_subpages = max(1, config.alloc_bytes // SUBPAGE_BYTES)
        self.n_frames = config.n_frames
        self.n_sets = config.n_sets
        self.ways = config.ways

    def simulate(self, stream: AccessStream, *, iterations: int = 1) -> CacheModelResult:
        """Expected misses of ``stream`` (optionally iterated to reach a
        warm steady state; results describe the *last* iteration)."""
        if iterations < 1:
            raise MemoryModelError("iterations must be >= 1")
        full = stream.repeated(iterations) if iterations > 1 else stream
        ids = full.subpages
        n = ids.size
        if n == 0:
            return CacheModelResult(0, 0, 0.0, 0, 0.0, 0.0)
        # --- frame level: the only level at which capacity acts -------
        frame_ids = full.mapped(self.alloc_subpages)
        n_distinct_frames = int(np.unique(frame_ids).size)
        p_evict = set_full_probability(
            n_distinct_frames, self.n_sets, self.ways, self.n_frames
        )
        f_dist, f_cold = time_distances(frame_ids)
        m_f, p_frame_miss = fixpoint_miss_ratio(
            f_dist, f_cold, self.n_frames, evict_prob=p_evict
        )
        # --- line level: hit iff seen before and frame survived -------
        distances, n_cold = time_distances(ids)
        warm = distances >= 0
        frame_rate = frame_ids.size / n
        log_survive = math.log1p(-p_evict / self.n_frames) if p_evict > 0 else 0.0
        p_miss = np.ones(n)
        if log_survive != 0.0:
            exponent = m_f * frame_rate * distances[warm].astype(np.float64)
            p_miss[warm] = -np.expm1(exponent * log_survive)
        else:
            p_miss[warm] = 0.0
        if iterations > 1:
            per_iter = stream.n_touches
            tail = slice((iterations - 1) * per_iter, None)
            misses = float(p_miss[tail].sum())
            cold = int(np.count_nonzero(distances[tail] < 0))
            touches = per_iter
            words = stream.n_word_accesses
            frame_allocs = (f_cold + float(p_frame_miss[f_dist >= 0].sum())) / iterations
        else:
            misses = float(p_miss.sum())
            cold = n_cold
            touches = n
            words = full.n_word_accesses
            frame_allocs = f_cold + float(p_frame_miss[f_dist >= 0].sum())
        miss_ratio = misses / touches if touches else 0.0
        return CacheModelResult(
            n_touches=touches,
            n_word_accesses=words,
            expected_line_misses=misses,
            cold_line_misses=cold,
            expected_frame_allocs=frame_allocs,
            miss_ratio=miss_ratio,
        )
