"""ALLCACHE memory system.

The KSR has no main memory: all storage is cache (COMA).  Each cell
carries a 256 KB 2-way *sub-cache* (first level) and a 32 MB 16-way
*local cache* (second level); a System Virtual Address lives wherever
copies of its subpage currently sit.

This package provides address arithmetic and segment translation
(:mod:`~repro.memory.address`), the generic set-associative machinery
with the KSR's allocate-by-block/page, fill-by-subblock/subpage policy
(:mod:`~repro.memory.cache_sets`, :mod:`~repro.memory.subcache`,
:mod:`~repro.memory.local_cache`), the hardware performance monitor
(:mod:`~repro.memory.perfmon`), and — for the kernel-scale tier — the
run-length-compressed access streams and the vectorized reuse-distance
cache model (:mod:`~repro.memory.streams`,
:mod:`~repro.memory.analytic_cache`).
"""

from repro.memory.address import (
    subpage_of,
    subblock_of,
    block_of,
    page_of,
    word_of,
    subpage_base,
    align_up,
    SegmentTranslationTable,
    ContextAddressSpace,
)
from repro.memory.cache_sets import SetAssociativeCache, AccessResult
from repro.memory.subcache import SubCache
from repro.memory.local_cache import LocalCache, SubpageState
from repro.memory.perfmon import PerfMonitor
from repro.memory.streams import AccessStream, sequential, strided, gather, concat
from repro.memory.analytic_cache import AnalyticCache, CacheModelResult

__all__ = [
    "subpage_of",
    "subblock_of",
    "block_of",
    "page_of",
    "word_of",
    "subpage_base",
    "align_up",
    "SegmentTranslationTable",
    "ContextAddressSpace",
    "SetAssociativeCache",
    "AccessResult",
    "SubCache",
    "LocalCache",
    "SubpageState",
    "PerfMonitor",
    "AccessStream",
    "sequential",
    "strided",
    "gather",
    "concat",
    "AnalyticCache",
    "CacheModelResult",
]
