"""Generic set-associative cache with the KSR allocation policy.

The KSR caches are unusual in that *allocation* and *transfer* happen
at different granularities: the sub-cache reserves a whole 2 KB block
frame on first touch but fills it one 64 B sub-block at a time on
demand; the local cache reserves a 16 KB page frame and fills 128 B
subpages on demand.  Replacement is random (the paper blames this
policy for sub-cache thrashing in SP).

This module models exactly that: frames are tagged by allocation unit,
each frame tracks which of its lines are present, and an access report
says whether the line hit, whether the frame had to be allocated, and
what was evicted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import MemoryModelError
from repro.machine.config import CacheConfig

__all__ = ["AccessResult", "Frame", "SetAssociativeCache"]


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one line access.

    ``line_hit``
        The line was present (no fill needed).
    ``frame_allocated``
        A new frame had to be reserved for the line's allocation unit
        (the expensive case the paper measures: +50 % / +60 % access
        time for block/page-allocating strides).
    ``evicted_alloc_id``
        Allocation unit that was displaced to make room, or ``None``.
    ``evicted_lines``
        Line ids that were present in the displaced frame (the
        coherence layer must drop their state).
    """

    line_hit: bool
    frame_allocated: bool
    evicted_alloc_id: Optional[int] = None
    evicted_lines: tuple[int, ...] = ()

    @property
    def line_missed(self) -> bool:
        """Convenience inverse of ``line_hit``."""
        return not self.line_hit


@dataclass
class Frame:
    """One allocated frame: an allocation unit plus its present lines."""

    alloc_id: int
    lines: set[int] = field(default_factory=set)


class SetAssociativeCache:
    """Set-associative cache of allocation frames.

    Parameters
    ----------
    config:
        Geometry (:class:`repro.machine.config.CacheConfig`).
    rng:
        Source of randomness for victim selection.  Determinism of a
        simulation run follows from seeding (see
        :class:`repro.util.rng.SeedStream`).
    policy:
        ``"random"`` — the KSR's actual policy, the default — or
        ``"lru"``, provided for ablation studies (the paper blames
        random replacement for SP's sub-cache thrashing; the
        replacement-policy benchmark quantifies that diagnosis).

    Notes
    -----
    Line ids must belong to the allocation unit they map to:
    ``alloc_id = line_id // lines_per_alloc``; sets are indexed by
    ``alloc_id % n_sets`` — matching a physically indexed cache with
    allocation-unit-sized frames.
    """

    def __init__(
        self,
        config: CacheConfig,
        rng: np.random.Generator,
        *,
        policy: str = "random",
    ):
        if policy not in ("random", "lru"):
            raise MemoryModelError(f"unknown replacement policy {policy!r}")
        self.config = config
        self.rng = rng
        self.policy = policy
        self.lines_per_alloc = config.lines_per_alloc
        self.n_sets = config.n_sets
        self.ways = config.ways
        # sets[i] maps alloc_id -> Frame; kept small (<= ways entries).
        # Python dicts preserve insertion order, which doubles as the
        # LRU order: on a frame touch we re-insert the key at the end,
        # so the first key is always the least recently used.
        self._sets: list[dict[int, Frame]] = [dict() for _ in range(self.n_sets)]
        self.n_accesses = 0
        self.n_line_hits = 0
        self.n_frame_allocs = 0
        self.n_evictions = 0

    # ------------------------------------------------------------------

    def _set_of(self, alloc_id: int) -> dict[int, Frame]:
        return self._sets[alloc_id % self.n_sets]

    def access(self, line_id: int) -> AccessResult:
        """Touch ``line_id``: fill it (allocating/evicting as needed).

        Returns an :class:`AccessResult`; the caller charges latency
        and informs the coherence layer about evicted lines.
        """
        if line_id < 0:
            raise MemoryModelError(f"negative line id {line_id}")
        self.n_accesses += 1
        alloc_id = line_id // self.lines_per_alloc
        cache_set = self._set_of(alloc_id)
        frame = cache_set.get(alloc_id)
        if frame is not None:
            if self.policy == "lru":
                # re-insert at the back: dict order is recency order
                cache_set.pop(alloc_id)
                cache_set[alloc_id] = frame
            if line_id in frame.lines:
                self.n_line_hits += 1
                return AccessResult(line_hit=True, frame_allocated=False)
            frame.lines.add(line_id)
            return AccessResult(line_hit=False, frame_allocated=False)
        # Frame miss: allocate, evicting per policy if the set is full.
        evicted_alloc: Optional[int] = None
        evicted_lines: tuple[int, ...] = ()
        if len(cache_set) >= self.ways:
            if self.policy == "lru":
                victim_key = next(iter(cache_set))
            else:
                victim_key = list(cache_set.keys())[
                    int(self.rng.integers(len(cache_set)))
                ]
            victim = cache_set.pop(victim_key)
            evicted_alloc = victim.alloc_id
            evicted_lines = tuple(sorted(victim.lines))
            self.n_evictions += 1
        cache_set[alloc_id] = Frame(alloc_id, {line_id})
        self.n_frame_allocs += 1
        return AccessResult(
            line_hit=False,
            frame_allocated=True,
            evicted_alloc_id=evicted_alloc,
            evicted_lines=evicted_lines,
        )

    # ------------------------------------------------------------------
    # Queries / maintenance used by the coherence layer
    # ------------------------------------------------------------------

    def contains_line(self, line_id: int) -> bool:
        """Whether ``line_id`` is currently present."""
        frame = self._set_of(line_id // self.lines_per_alloc).get(
            line_id // self.lines_per_alloc
        )
        return frame is not None and line_id in frame.lines

    def contains_frame(self, alloc_id: int) -> bool:
        """Whether the allocation unit has a frame (even if the
        requested line is absent)."""
        return alloc_id in self._set_of(alloc_id)

    def drop_line(self, line_id: int) -> bool:
        """Remove one line (keeps the frame).  Returns whether present."""
        alloc_id = line_id // self.lines_per_alloc
        frame = self._set_of(alloc_id).get(alloc_id)
        if frame is None or line_id not in frame.lines:
            return False
        frame.lines.discard(line_id)
        return True

    def drop_frame(self, alloc_id: int) -> tuple[int, ...]:
        """Remove a whole frame; returns the lines that were present."""
        frame = self._set_of(alloc_id).pop(alloc_id, None)
        if frame is None:
            return ()
        return tuple(sorted(frame.lines))

    @property
    def n_frames_used(self) -> int:
        """Currently allocated frames across all sets."""
        return sum(len(s) for s in self._sets)

    @property
    def hit_rate(self) -> float:
        """Line hit rate over the cache's lifetime."""
        if self.n_accesses == 0:
            return 0.0
        return self.n_line_hits / self.n_accesses

    def reset_counters(self) -> None:
        """Zero the statistics counters (contents untouched)."""
        self.n_accesses = 0
        self.n_line_hits = 0
        self.n_frame_allocs = 0
        self.n_evictions = 0
