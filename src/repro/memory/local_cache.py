"""The second-level cache (local cache) with per-subpage coherence state.

32 MB per cell, 16-way set associative, random replacement; allocation
in 16 KB pages, fills in 128 B subpages.  Each present subpage carries
one of the KSR coherence states:

``INVALID``
    A *place-holder*: space is allocated and the tag matches, but the
    data is stale (another cell wrote it).  Place-holders are what
    read-snarfing refreshes for free when a response packet passes.
``SHARED``
    A valid read-only copy; other cells may also hold SHARED copies.
``EXCLUSIVE``
    The only valid copy; may be written without ring traffic.
``ATOMIC``
    Like EXCLUSIVE plus the subpage lock is held
    (:func:`~repro.sim.process.GetSubpage`); other cells' get-subpage
    requests are refused until release.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ProtocolError
from repro.machine.config import CacheConfig, SUBPAGE_BYTES
from repro.memory.cache_sets import SetAssociativeCache

__all__ = ["SubpageState", "LocalCacheFill", "LocalCache"]


class SubpageState(enum.Enum):
    """Coherence state of a subpage copy in one local cache."""

    INVALID = "invalid"
    SHARED = "shared"
    EXCLUSIVE = "exclusive"
    ATOMIC = "atomic"

    @property
    def valid(self) -> bool:
        """Whether the copy's data may be read."""
        return self is not SubpageState.INVALID

    @property
    def writable(self) -> bool:
        """Whether the copy may be written without a ring transaction."""
        return self in (SubpageState.EXCLUSIVE, SubpageState.ATOMIC)


@dataclass(frozen=True)
class LocalCacheFill:
    """Outcome of filling a subpage into the local cache."""

    page_allocated: bool
    evicted_subpages: tuple[int, ...] = ()


class LocalCache:
    """Per-cell second-level cache: presence plus coherence state."""

    def __init__(self, config: CacheConfig, rng: np.random.Generator):
        self._cache = SetAssociativeCache(config, rng)
        self._states: dict[int, SubpageState] = {}
        self.n_fills = 0
        self.n_snarfs = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def state_of(self, subpage_id: int) -> Optional[SubpageState]:
        """State of the subpage copy, or ``None`` when absent."""
        return self._states.get(subpage_id)

    def contains(self, subpage_id: int) -> bool:
        """Whether the subpage is present (in any state, incl. INVALID)."""
        return subpage_id in self._states

    def is_valid(self, subpage_id: int) -> bool:
        """Whether a readable copy is present."""
        state = self._states.get(subpage_id)
        return state is not None and state.valid

    def valid_subpages(self) -> list[int]:
        """All subpages with a readable copy (diagnostics/tests)."""
        return [sp for sp, st in self._states.items() if st.valid]

    # ------------------------------------------------------------------
    # Fills and state changes (driven by the coherence protocol)
    # ------------------------------------------------------------------

    def fill(self, subpage_id: int, state: SubpageState) -> LocalCacheFill:
        """Install a subpage copy in ``state``.

        Allocates the containing 16 KB page frame if needed; a random
        victim page may be displaced, and its subpages' states are
        dropped and reported so the protocol can account for them.
        """
        if state is SubpageState.INVALID:
            raise ProtocolError("cannot fill a subpage in INVALID state")
        result = self._cache.access(subpage_id)
        evicted: tuple[int, ...] = ()
        if result.evicted_lines:
            evicted = result.evicted_lines
            for sp in evicted:
                self._states.pop(sp, None)
        self._states[subpage_id] = state
        self.n_fills += 1
        return LocalCacheFill(page_allocated=result.frame_allocated, evicted_subpages=evicted)

    def set_state(self, subpage_id: int, state: SubpageState) -> None:
        """Change the state of a *present* subpage."""
        if subpage_id not in self._states:
            raise ProtocolError(
                f"state change on absent subpage {subpage_id} "
                f"({self._states.get(subpage_id)})"
            )
        self._states[subpage_id] = state

    def invalidate(self, subpage_id: int) -> bool:
        """Demote a copy to a place-holder.  Returns whether it was valid."""
        state = self._states.get(subpage_id)
        if state is None:
            return False
        self._states[subpage_id] = SubpageState.INVALID
        return state.valid

    def snarf(self, subpage_id: int) -> bool:
        """Revalidate a place-holder from a passing response packet.

        Returns ``True`` if a place-holder was refreshed.  Valid copies
        are left untouched (snarfing only helps INVALID ones).
        """
        if self._states.get(subpage_id) is SubpageState.INVALID:
            self._states[subpage_id] = SubpageState.SHARED
            self.n_snarfs += 1
            return True
        return False

    def drop(self, subpage_id: int) -> None:
        """Remove a subpage copy entirely (state and data)."""
        self._states.pop(subpage_id, None)
        self._cache.drop_line(subpage_id)

    # ------------------------------------------------------------------

    @property
    def n_subpages_present(self) -> int:
        """Number of subpage copies currently tracked."""
        return len(self._states)

    @staticmethod
    def subpage_bytes() -> int:
        """Size of the coherence unit (for convenience in tests)."""
        return SUBPAGE_BYTES
