"""Exception hierarchy for the repro package.

Every exception raised intentionally by this package derives from
:class:`ReproError` so callers can catch package errors with a single
``except`` clause without swallowing genuine bugs (``TypeError`` etc.).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """A machine or experiment configuration is inconsistent.

    Examples: a ring with zero slots, a cache whose block size does not
    divide its total size, a KSR-1 configuration with more than 32
    cells on a single leaf ring.
    """


class SimulationError(ReproError):
    """The discrete-event engine was driven incorrectly.

    Examples: scheduling an event in the past, running a finished
    engine, a process yielding an object that is not an ``Op``.
    """


class DeadlockError(SimulationError):
    """The event queue drained while threads were still blocked.

    This is how the simulator reports a genuine synchronization bug in
    a workload (e.g. a barrier entered by fewer threads than its
    participant count, or a lock never released).  The message lists
    the blocked threads and what they were waiting for.
    """


class MemoryModelError(ReproError):
    """An address or access is outside what the memory system models.

    Examples: misaligned subpage operation, accessing an address that
    was never allocated through the shared-memory API, a stream whose
    indices fall outside its array.
    """


class AllocationError(MemoryModelError):
    """The shared-memory allocator ran out of its configured arena."""


class ProtocolError(ReproError):
    """The coherence protocol reached an inconsistent state.

    Raised only on internal invariant violations (two exclusive owners,
    releasing a subpage that is not atomic, snarfing a valid copy) —
    if you see this, it is a bug in the simulator, not your workload.
    """
