"""Plain-text table rendering for experiment reports.

The experiment harness prints rows in the same layout as the paper's
tables (e.g. Table 1: processors / time / speedup / efficiency / serial
fraction), so `Table` keeps formatting concerns out of the runners.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["Table"]


class Table:
    """Accumulate rows and render a fixed-width text table.

    >>> t = Table(["P", "Time (s)", "Speedup"])
    >>> t.add_row([1, 1638.86, 1.0])
    >>> t.add_row([32, 72.01, 22.76])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    P   Time (s)   Speedup
    --  ---------  -------
    1   1638.86    1
    32  72.01      22.76
    """

    def __init__(self, headers: Sequence[str], title: str | None = None):
        if not headers:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, values: Iterable[Any]) -> None:
        """Append a row; values are formatted with :func:`_fmt`."""
        row = [_fmt(v) for v in values]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} values but table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        """Render the table as aligned plain text."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
            lines.append("=" * len(self.title))
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)).rstrip())
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _fmt(value: Any) -> str:
    """Format a cell: floats get 6 significant digits, rest via str()."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, int):
        return str(value)
    return f"{value:.6g}"
