"""Deterministic random-number plumbing.

Every stochastic component of the simulator (random cache replacement,
slot-alignment jitter, timer-interrupt phases, synthetic workloads)
draws from its own :class:`numpy.random.Generator`, derived from a
single master seed through named sub-streams.  Two runs with the same
master seed are bit-identical; changing one component's stream name
re-seeds only that component.

Names are hashed with SHA-256 (stable across processes and Python
versions) rather than ``hash()`` (salted per process).
"""

from __future__ import annotations

import hashlib
from typing import Iterator

import numpy as np

__all__ = ["SeedStream", "derive_rng"]


def _name_to_entropy(name: str) -> int:
    """Map a stream name to a stable 64-bit integer."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def derive_rng(master_seed: int, name: str) -> np.random.Generator:
    """Return a Generator for the sub-stream ``name`` of ``master_seed``.

    >>> a = derive_rng(42, "cell/0/subcache")
    >>> b = derive_rng(42, "cell/0/subcache")
    >>> a.integers(1 << 30) == b.integers(1 << 30)
    True
    """
    seq = np.random.SeedSequence([master_seed, _name_to_entropy(name)])
    return np.random.Generator(np.random.PCG64(seq))


class SeedStream:
    """A factory of named, reproducible RNG sub-streams.

    Parameters
    ----------
    master_seed:
        The experiment-level seed.  All derived generators are pure
        functions of ``(master_seed, name)``.

    Examples
    --------
    >>> ss = SeedStream(7)
    >>> rng = ss.rng("ring/jitter")
    >>> ss.child("cell/3").rng("subcache").bit_generator is not None
    True
    """

    def __init__(self, master_seed: int, prefix: str = ""):
        if not isinstance(master_seed, int):
            raise TypeError(f"master_seed must be int, got {type(master_seed).__name__}")
        self.master_seed = master_seed
        self.prefix = prefix

    def rng(self, name: str) -> np.random.Generator:
        """Return the generator for sub-stream ``name``."""
        return derive_rng(self.master_seed, self._qualify(name))

    def child(self, name: str) -> "SeedStream":
        """Return a stream factory whose names are prefixed by ``name``."""
        return SeedStream(self.master_seed, self._qualify(name))

    def spawn(self, name: str, n: int) -> Iterator[np.random.Generator]:
        """Yield ``n`` generators named ``name/0`` … ``name/n-1``."""
        for i in range(n):
            yield self.rng(f"{name}/{i}")

    def _qualify(self, name: str) -> str:
        return f"{self.prefix}/{name}" if self.prefix else name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeedStream(master_seed={self.master_seed!r}, prefix={self.prefix!r})"
