"""Shared plumbing for the package's command-line tools.

``ksr-experiments`` and ``ksr-analyze`` share their unix manners
(SIGPIPE behaviour), the ``--output`` report option, and the
select-by-id argument shape; this module holds that common surface.
"""

from __future__ import annotations

import argparse
import sys
from typing import Iterable

__all__ = [
    "install_sigpipe_handler",
    "build_parser",
    "format_cache_stats",
    "resolve_selection",
    "write_report",
]


def install_sigpipe_handler() -> None:
    """Behave like a well-mannered unix tool when piped into head(1)."""
    try:
        import signal

        signal.signal(signal.SIGPIPE, signal.SIG_DFL)
    except (ImportError, AttributeError, ValueError):  # pragma: no cover
        pass  # non-posix platform or non-main thread


def build_parser(
    prog: str,
    description: str,
    *,
    positional: str,
    positional_help: str,
) -> argparse.ArgumentParser:
    """An argument parser with the shared id-selection + output shape."""
    parser = argparse.ArgumentParser(prog=prog, description=description)
    parser.add_argument(positional, nargs="*", help=positional_help)
    parser.add_argument("--list", action="store_true", help=f"list {positional} ids")
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="also write the rendered report to FILE (markdown-friendly)",
    )
    return parser


def resolve_selection(
    requested: list[str], known: Iterable[str]
) -> tuple[list[str], list[str]]:
    """Expand ``all`` and split a selection into (wanted, unknown) ids."""
    known = list(known)
    wanted = known if requested == ["all"] else requested
    unknown = [k for k in wanted if k not in known]
    return wanted, unknown


def format_cache_stats(stats: dict) -> str:
    """One-line human summary of a result cache's ``stats()`` dict.

    Shared by ``ksr-experiments --verbose`` and the ``ksr-serve``
    status surfaces, so both tools describe the cache identically —
    including the resolved absolute root, which is how a user discovers
    they have been warming a cache in the wrong directory.
    """
    lookups = stats.get("hits", 0) + stats.get("misses", 0)
    rate = stats["hits"] / lookups if lookups else 0.0
    parts = [
        f"cache at {stats['root']}:",
        f"{stats.get('hits', 0)} hits / {stats.get('misses', 0)} misses",
        f"({rate:.0%} hit rate)",
    ]
    if stats.get("corrupt"):
        parts.append(f"[{stats['corrupt']} corrupt entries dropped]")
    if "evictions" in stats:
        parts.append(f"{stats['evictions']} evicted")
    if "bytes" in stats:
        parts.append(f"{stats['bytes']} bytes resident")
    return " ".join(parts)


def write_report(path: str, title: str, sections: list[str]) -> None:
    """Write accumulated report sections as a small markdown file."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"# {title}\n\n")
        fh.write("\n".join(sections))
    print(f"report written to {path}")


def print_unknown(unknown: list[str], what: str) -> int:
    """Complain about unknown ids; returns the exit status to use."""
    print(f"unknown {what}(s): {', '.join(unknown)}", file=sys.stderr)
    return 2
