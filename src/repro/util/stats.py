"""Small statistics helpers used by experiments and tests.

Kept dependency-light on purpose: everything here operates on plain
sequences or NumPy arrays and returns plain floats, so experiment
result records stay serialization-friendly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "mean",
    "geometric_mean",
    "linear_fit",
    "relative_error",
    "summarize",
    "Summary",
]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on an empty sequence."""
    if len(values) == 0:
        raise ValueError("mean of empty sequence")
    return float(np.mean(np.asarray(values, dtype=float)))


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("geometric mean of empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))


def linear_fit(x: Sequence[float], y: Sequence[float]) -> tuple[float, float]:
    """Least-squares line ``y = slope * x + intercept``.

    Returns ``(slope, intercept)``.  Used e.g. to check that the
    exclusive-lock acquisition time grows linearly with processor
    count, as the paper reports for Figure 3.
    """
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.shape != ya.shape or xa.ndim != 1:
        raise ValueError("x and y must be 1-D sequences of equal length")
    if xa.size < 2:
        raise ValueError("need at least two points for a line fit")
    slope, intercept = np.polyfit(xa, ya, 1)
    return float(slope), float(intercept)


def relative_error(measured: float, reference: float) -> float:
    """``|measured - reference| / |reference|`` (reference must be nonzero)."""
    if reference == 0:
        raise ValueError("reference value must be nonzero")
    return abs(measured - reference) / abs(reference)


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.n} mean={self.mean:.6g} std={self.std:.6g} "
            f"min={self.minimum:.6g} max={self.maximum:.6g}"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics of a non-empty sample."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("summarize of empty sequence")
    std = float(np.std(arr, ddof=1)) if arr.size > 1 else 0.0
    if not math.isfinite(std):
        std = 0.0
    return Summary(
        n=int(arr.size),
        mean=float(np.mean(arr)),
        std=std,
        minimum=float(np.min(arr)),
        maximum=float(np.max(arr)),
    )
