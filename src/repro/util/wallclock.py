"""The sanctioned wall-clock seam for *metering only*.

Simulator packages are forbidden (lint rule KSR100) from importing
``time`` directly, because no simulated outcome may depend on the host
clock.  Throughput metering — the ``events/sec`` counter exposed by
:attr:`repro.sim.engine.Engine.stats` — is the one legitimate use of
wall time inside the simulator: it observes the host, never the model.
This module is that single, auditable entry point.  Nothing read from
it may influence event ordering, timestamps, or any simulated value;
the determinism auditor (``ksr-analyze races``) exists to catch
violations of that rule.
"""

from __future__ import annotations

from time import perf_counter

__all__ = ["perf_counter"]
