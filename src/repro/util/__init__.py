"""Shared utilities: deterministic RNG streams, unit conversion, stats.

Nothing in this subpackage knows about the KSR; it is generic plumbing
used by the simulator, the kernels and the experiment harness.
"""

from repro.util.rng import SeedStream, derive_rng
from repro.util.units import (
    KIB,
    MIB,
    GIB,
    cycles_to_seconds,
    seconds_to_cycles,
    bytes_per_second,
    format_bytes,
    format_seconds,
)
from repro.util.stats import (
    mean,
    geometric_mean,
    linear_fit,
    relative_error,
    summarize,
    Summary,
)
from repro.util.tables import Table
from repro.util.charts import ascii_chart

__all__ = [
    "SeedStream",
    "derive_rng",
    "KIB",
    "MIB",
    "GIB",
    "cycles_to_seconds",
    "seconds_to_cycles",
    "bytes_per_second",
    "format_bytes",
    "format_seconds",
    "mean",
    "geometric_mean",
    "linear_fit",
    "relative_error",
    "summarize",
    "Summary",
    "Table",
    "ascii_chart",
]
