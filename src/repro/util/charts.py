"""ASCII charts: render experiment series as terminal figures.

The paper's artifacts are half tables, half *figures*; the experiment
runners collect both (``ExperimentResult.series``).  This module turns
a series dict into a fixed-size character plot so ``ksr-experiments
--chart`` can show Figure 4's curves in a terminal the way the paper
shows them on paper.

Pure text, no dependencies; deliberately simple: linear or log-10 y
axis, one marker character per series, nearest-cell rasterization.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["ascii_chart"]

_MARKERS = "*o+x#@%&$~"


def _nice_number(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.01:
        return f"{value:.1e}"
    return f"{value:.3g}"


def ascii_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    width: int = 60,
    height: int = 16,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
    log_y: bool = False,
) -> str:
    """Render ``{name: [(x, y), ...]}`` as a character plot.

    Returns a multi-line string: title, plot area with y-axis ticks,
    x-axis with min/max, and a marker legend.  Raises ``ValueError``
    for empty input or non-positive values with ``log_y``.
    """
    named = {k: list(v) for k, v in series.items() if v}
    if not named:
        raise ValueError("nothing to plot")
    if width < 16 or height < 4:
        raise ValueError("chart too small to be legible")
    points = [(x, y) for pts in named.values() for x, y in pts]
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    if log_y and min(ys) <= 0:
        raise ValueError("log_y requires strictly positive values")

    def ty(y: float) -> float:
        return math.log10(y) if log_y else y

    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ty(y) for y in ys), max(ty(y) for y in ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for (name, pts), marker in zip(sorted(named.items()), _MARKERS * 5):
        for x, y in pts:
            col = round((x - x_lo) / x_span * (width - 1))
            row = height - 1 - round((ty(y) - y_lo) / y_span * (height - 1))
            grid[row][col] = marker
    lines: list[str] = []
    if title:
        lines.append(title)
    top_tick = _nice_number(10**y_hi if log_y else y_hi)
    bottom_tick = _nice_number(10**y_lo if log_y else y_lo)
    margin = max(len(top_tick), len(bottom_tick), len(y_label)) + 1
    lines.append(f"{y_label.rjust(margin)}")
    for i, row in enumerate(grid):
        if i == 0:
            tick = top_tick
        elif i == height - 1:
            tick = bottom_tick
        else:
            tick = ""
        lines.append(f"{tick.rjust(margin)} |{''.join(row)}")
    lines.append(f"{' ' * margin} +{'-' * width}")
    x_axis = f"{_nice_number(x_lo)}{' ' * max(1, width - len(_nice_number(x_lo)) - len(_nice_number(x_hi)))}{_nice_number(x_hi)}"
    lines.append(f"{' ' * margin}  {x_axis}  ({x_label})")
    legend = "  ".join(
        f"{marker}={name}"
        for (name, _), marker in zip(sorted(named.items()), _MARKERS * 5)
    )
    lines.append(f"{' ' * margin}  {legend}")
    return "\n".join(lines)
