"""Unit helpers: bytes, cycles and seconds.

The simulator's native time unit is the *CPU cycle* of the machine
being modelled (50 ns on the 20 MHz KSR-1, 25 ns on the KSR-2).  All
conversion between cycles and wall-clock seconds goes through these
helpers so no module hard-codes a clock.
"""

from __future__ import annotations

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "cycles_to_seconds",
    "seconds_to_cycles",
    "bytes_per_second",
    "format_bytes",
    "format_seconds",
]

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


def cycles_to_seconds(cycles: float, clock_hz: float) -> float:
    """Convert a cycle count to seconds at the given clock frequency."""
    if clock_hz <= 0:
        raise ValueError(f"clock_hz must be positive, got {clock_hz}")
    return cycles / clock_hz


def seconds_to_cycles(seconds: float, clock_hz: float) -> float:
    """Convert seconds to (fractional) cycles at the given clock."""
    if clock_hz <= 0:
        raise ValueError(f"clock_hz must be positive, got {clock_hz}")
    return seconds * clock_hz


def bytes_per_second(nbytes: float, seconds: float) -> float:
    """Throughput of moving ``nbytes`` in ``seconds``."""
    if seconds <= 0:
        raise ValueError(f"seconds must be positive, got {seconds}")
    return nbytes / seconds


def format_bytes(nbytes: float) -> str:
    """Human-readable byte count (``'32.0 MiB'``)."""
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{value:.0f} B"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_seconds(seconds: float) -> str:
    """Human-readable duration using the most natural SI prefix."""
    if seconds == 0:
        return "0 s"
    magnitude = abs(seconds)
    if magnitude >= 1.0:
        return f"{seconds:.3f} s"
    if magnitude >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    if magnitude >= 1e-6:
        return f"{seconds * 1e6:.3f} us"
    return f"{seconds * 1e9:.1f} ns"
