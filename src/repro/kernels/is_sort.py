"""The NAS Integer Sort (IS) kernel — the paper's seven-phase bucket sort.

IS ranks N integer keys by bucket counting.  The paper's
parallelization (Figure 9) replicates the bucket-count structure
(``keyden_t``, ~2 MB) at every processor to avoid synchronization, at
the cost of two new steps absent from the sequential algorithm: the
all-to-all accumulation (phase 2) and the serial combination of
partial prefix maxima (phase 4).  The atomic copy of the global prefix
sums (phase 6) serializes in lock-pipelined chunks.

Phase inventory (per ranking iteration):

1. local count      — read own keys, bump private ``keyden_t``
2. accumulate       — read every processor's ``keyden_t`` portion
                      (heavy simultaneous remote traffic: the phase
                      that saturates the 32-node ring)
3. partial prefix   — local scan of own ``keyden`` portion
4. serial combine   — P1 gathers the P partial maxima (serial, grows
                      with P — one of the two algorithmic bottlenecks)
5. rebase           — add ``tmp_sum[i-1]`` to own portion
6. atomic copy      — copy global prefix sums into private
                      ``keyden_t``; chunk-locked, pipelined
7. rank             — re-read own keys, assign ranks through
                      ``keyden_t``

The numerics are real (NumPy bucket ranking, verified against argsort);
the timing model prices each phase for every processor count.  Data
sizes follow the paper: N = 2^23 keys, key and rank arrays 32 MB each,
bucket structures ~2 MB — so a single processor overflows its 32 MB
local cache, producing the cache-driven superunitary speedups up to 8
processors that the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.kernels.costmodel import BarrierCostModel, KernelCostModel, PhaseWork
from repro.kernels.vectorized import shift_stream
from repro.machine.config import MachineConfig, SUBPAGE_BYTES
from repro.memory.streams import AccessStream, concat, gather, sequential

__all__ = ["IsKernel", "IsResult"]

#: Paper data sizes: "Each of the data structures key ... and rank ...
#: is of size 32 MBytes" for 2^23 keys (4-byte integers on the wire).
_KEY_BYTES = 4
#: The prefix-sums structure is "roughly 2 MBytes".
_BUCKET_BYTES = 8

#: Address-map bases for the cost-model streams.
_KEY_BASE = 0x0000_0000
_RANK_BASE = 0x4000_0000
_KEYDEN_T_BASE = 0x8000_0000  # + pid << 24
_KEYDEN_BASE = 0xC000_0000
#: Gather streams are subsampled by this factor (costs scaled back).
_GATHER_SAMPLE = 16
#: Chunk size of the phase-6 lock pipeline.
_COPY_CHUNK_BYTES = 64 * 1024
#: Overlap of capacity/remote transfer latency achieved by prefetching
#: the perfectly sequential key/bucket sweeps ("The prefetch
#: instruction of KSR-1 is very helpful and we used it quite
#: extensively in implementing CG, IS and SP").
_STREAM_PREFETCH_OVERLAP = 0.85


@dataclass(frozen=True)
class IsResult:
    """Timing for one processor count."""

    n_procs: int
    time_s: float
    phase_seconds: dict[str, float]
    serial_s: float
    saturated_phases: list[str]


class IsKernel:
    """IS on the simulated KSR.

    Defaults are test scale; ``IsKernel.paper_size`` gives the 2^23-key
    problem of Table 2.
    """

    def __init__(
        self,
        config: MachineConfig,
        *,
        n_keys: int = 1 << 17,
        n_buckets: int = 1 << 13,
        iterations: int = 10,
        seed: int = 21,
    ):
        if n_keys < 2 or n_buckets < 2:
            raise ConfigError("need at least two keys and two buckets")
        self.config = config
        self.n_keys = n_keys
        self.n_buckets = n_buckets
        self.iterations = iterations
        rng = np.random.default_rng(seed)
        # NAS IS keys: sum of four uniforms -> binomial-ish distribution
        raw = rng.integers(0, n_buckets, size=(4, n_keys)).sum(axis=0) // 4
        self.keys = raw.astype(np.int64)
        self.cost_model = KernelCostModel(config)
        self.barrier_model = BarrierCostModel(config)

    @staticmethod
    def paper_size(config: MachineConfig, *, iterations: int = 10) -> "IsKernel":
        """The paper's problem: 2^23 keys, 2^18 buckets."""
        return IsKernel(config, n_keys=1 << 23, n_buckets=1 << 18, iterations=iterations)

    # ------------------------------------------------------------------
    # Real numerics
    # ------------------------------------------------------------------

    def rank_keys(self) -> np.ndarray:
        """Stable bucket-sort ranks (0-based) of the key array.

        Implemented exactly as the seven-phase algorithm computes them:
        rank(i) = prefix_sum(key[i]) + (occurrence index of i within
        its bucket), vectorized.
        """
        # A stable sort by bucket assigns exactly
        #   rank(i) = prefix_sum(key[i]) + occurrence-index-in-bucket,
        # so ranks are the inverse of the stable ordering.
        order = np.argsort(self.keys, kind="stable")
        ranks = np.empty(self.n_keys, dtype=np.int64)
        ranks[order] = np.arange(self.n_keys)
        return ranks

    def verify(self, ranks: np.ndarray) -> None:
        """NAS-style check: ranks are a permutation that sorts keys."""
        if not np.array_equal(np.sort(ranks), np.arange(self.n_keys)):
            raise AssertionError("ranks are not a permutation")
        sorted_keys = np.empty_like(self.keys)
        sorted_keys[ranks] = self.keys
        if np.any(np.diff(sorted_keys) < 0):
            raise AssertionError("ranks do not sort the keys")

    # ------------------------------------------------------------------
    # Performance model
    # ------------------------------------------------------------------

    def _key_words(self, count: int) -> int:
        """Stream words representing ``count`` 4-byte keys."""
        return max(1, count * _KEY_BYTES // 8)

    def _bucket_words(self, count: int) -> int:
        return max(1, count * _BUCKET_BYTES // 8)

    def _bucket_gather(self, pid: int, n_procs: int, base: int) -> AccessStream:
        """Subsampled gather of this processor's keys into a bucket
        structure (the real key values drive the pattern)."""
        lo = pid * self.n_keys // n_procs
        hi = (pid + 1) * self.n_keys // n_procs
        sample = self.keys[lo:hi:_GATHER_SAMPLE]
        return gather(base, sample, write_fraction=0.5)

    def phase_works(self, n_procs: int) -> list[tuple[str, list[PhaseWork], bool]]:
        """(name, per-processor works, is_serial) for each phase."""
        P = n_procs
        keys_per = self.n_keys // P
        key_words = self._key_words(keys_per)
        bucket_words = self._bucket_words(self.n_buckets)
        portion_words = max(1, bucket_words // P)
        bucket_subpages = bucket_words * 8 / SUBPAGE_BYTES
        phases: list[tuple[str, list[PhaseWork], bool]] = []

        def per_proc(name: str, builder) -> tuple[str, list[PhaseWork], bool]:
            return name, [builder(p) for p in range(P)], False

        def translated(stream0: AccessStream, p: int, delta_bytes: int, build) -> AccessStream:
            """Processor ``p``'s copy of a per-processor stream: shift
            processor 0's when the offset is subpage-aligned, else
            rebuild (content-identical either way)."""
            if p == 0:
                return stream0
            shifted = shift_stream(stream0, p * delta_bytes)
            return shifted if shifted is not None else build(p)

        # Shared per-processor stream pieces.  Each processor's key
        # sweep and keyden portion are translates of processor 0's;
        # the bucket gathers are shared verbatim between the count and
        # rank phases (same keys drive both).
        key0 = sequential(_KEY_BASE, key_words)
        key_streams = [
            translated(
                key0,
                p,
                key_words * 8,
                lambda p: sequential(_KEY_BASE + p * key_words * 8, key_words),
            )
            for p in range(P)
        ]
        portion0 = sequential(_KEYDEN_BASE, portion_words, write_fraction=0.5)
        portion_streams = [
            translated(
                portion0,
                p,
                portion_words * 8,
                lambda p: sequential(
                    _KEYDEN_BASE + p * portion_words * 8,
                    portion_words,
                    write_fraction=0.5,
                ),
            )
            for p in range(P)
        ]
        gathers = [
            self._bucket_gather(p, P, _KEYDEN_T_BASE + (p << 24)) for p in range(P)
        ]

        # 1: local bucket count over own keys
        phases.append(
            per_proc(
                "count",
                lambda p: PhaseWork(
                    name=f"is-count-p{p}",
                    n_active=P,
                    int_ops=3.0 * keys_per,
                    stream=concat([key_streams[p], gathers[p]]),
                    stream_scale=1.0,  # gather already subsampled; its
                    # weight is small next to the key sweep
                    prefetch_overlap=_STREAM_PREFETCH_OVERLAP,
                ),
            )
        )
        # 2: all-to-all accumulation of the replicated counts
        remote_acc = bucket_subpages * (P - 1) / P if P > 1 else 0.0
        phases.append(
            per_proc(
                "accumulate",
                lambda p: PhaseWork(
                    name=f"is-acc-p{p}",
                    n_active=P,
                    int_ops=2.0 * bucket_words,
                    stream=portion_streams[p],
                    remote_subpages=remote_acc,
                    prefetch_overlap=_STREAM_PREFETCH_OVERLAP,
                ),
            )
        )
        # 3: partial prefix sums on the own portion
        phases.append(
            per_proc(
                "prefix",
                lambda p: PhaseWork(
                    name=f"is-prefix-p{p}",
                    n_active=P,
                    int_ops=2.0 * portion_words,
                    stream=portion_streams[p],
                ),
            )
        )
        # 4: SERIAL combine of the P partial maxima on processor 1
        phases.append(
            (
                "serial-combine",
                [
                    PhaseWork(
                        name="is-combine",
                        n_active=1,
                        int_ops=4.0 * P,
                        remote_subpages=float(max(0, P - 1)),
                    )
                ],
                True,
            )
        )
        # 5: rebase own portion by tmp_sum[i-1]
        phases.append(
            per_proc(
                "rebase",
                lambda p: PhaseWork(
                    name=f"is-rebase-p{p}",
                    n_active=P,
                    int_ops=portion_words,
                    stream=portion_streams[p],
                    remote_subpages=1.0 if P > 1 else 0.0,
                ),
            )
        )
        # 6: atomic pipelined copy of keyden into each keyden_t
        copy_remote = bucket_subpages * (P - 1) / P if P > 1 else 0.0
        chunk_cycles = self.config.remote_latency_cycles  # lock handoff
        n_chunks = max(1, (bucket_words * 8) // _COPY_CHUNK_BYTES)
        pipeline_fill = (P - 1) * chunk_cycles * n_chunks / max(1, P)
        keyden_full = sequential(_KEYDEN_BASE, bucket_words)
        keyden_t0 = sequential(_KEYDEN_T_BASE, bucket_words, write_fraction=1.0)
        keyden_t_streams = [
            translated(
                keyden_t0,
                p,
                1 << 24,
                lambda p: sequential(
                    _KEYDEN_T_BASE + (p << 24), bucket_words, write_fraction=1.0
                ),
            )
            for p in range(P)
        ]
        phases.append(
            per_proc(
                "atomic-copy",
                lambda p: PhaseWork(
                    name=f"is-copy-p{p}",
                    n_active=P,
                    int_ops=2.0 * bucket_words,
                    extra_cycles=pipeline_fill,
                    stream=concat([keyden_full, keyden_t_streams[p]]),
                    remote_subpages=copy_remote,
                    prefetch_overlap=_STREAM_PREFETCH_OVERLAP,
                ),
            )
        )
        # 7: rank assignment through the private keyden_t
        rank_words = self._key_words(keys_per)
        rank0 = sequential(_RANK_BASE, rank_words, write_fraction=1.0)
        rank_streams = [
            translated(
                rank0,
                p,
                rank_words * 8,
                lambda p: sequential(
                    _RANK_BASE + p * rank_words * 8, rank_words, write_fraction=1.0
                ),
            )
            for p in range(P)
        ]
        phases.append(
            per_proc(
                "rank",
                lambda p: PhaseWork(
                    name=f"is-rank-p{p}",
                    n_active=P,
                    int_ops=4.0 * keys_per,
                    stream=concat([key_streams[p], gathers[p], rank_streams[p]]),
                    prefetch_overlap=_STREAM_PREFETCH_OVERLAP,
                ),
            )
        )
        return phases

    def run(self, n_procs: int) -> IsResult:
        """Model the full ranking run at ``n_procs``."""
        if n_procs < 1 or n_procs > self.config.n_cells:
            raise ConfigError("processor count out of range")
        phase_seconds: dict[str, float] = {}
        saturated: list[str] = []
        serial_cycles = 0.0
        total_cycles = 0.0
        for name, works, is_serial in self.phase_works(n_procs):
            cost = self.cost_model.parallel_time(works)
            cycles = cost.total_cycles + self.barrier_model.barrier_cycles(n_procs)
            phase_seconds[name] = self.config.seconds(cycles * self.iterations)
            total_cycles += cycles
            if is_serial:
                serial_cycles += cost.total_cycles
            if cost.saturated:
                saturated.append(name)
        total = total_cycles * self.iterations
        return IsResult(
            n_procs=n_procs,
            time_s=self.config.seconds(total),
            phase_seconds=phase_seconds,
            serial_s=self.config.seconds(serial_cycles * self.iterations),
            saturated_phases=saturated,
        )

    def scaling(self, proc_counts: list[int]) -> list[IsResult]:
        """Run the model across a processor sweep."""
        return [self.run(p) for p in proc_counts]
