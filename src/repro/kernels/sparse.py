"""Sparse matrix formats for the CG kernel.

The paper's CG story is a *data-structure* story: the NASA Ames code
stored A in "column start, row index" (CSC) form, whose matvec scatters
into ``y`` through an indirection — poor locality and, when
parallelized by columns, write conflicts on ``y`` needing per-access
synchronization.  The authors transformed it to "row start, column
index" (CSR) form, computing each ``y[i]`` in its entirety: better
locality, and row-partitioning parallelizes with *no* synchronization
on ``y``.

Both formats are implemented here with NumPy-vectorized matvecs plus
access-stream builders for the cost model, and a generator of random
sparse symmetric positive definite matrices of the paper's size
(n = 14000, ~2.03 M nonzeros).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

__all__ = ["SparseCSC", "SparseCSR", "random_sparse_spd"]


@dataclass(frozen=True)
class SparseCSR:
    """Row start / column index format (the transformed layout)."""

    n: int
    row_start: np.ndarray  # n+1
    col_index: np.ndarray  # nnz
    values: np.ndarray  # nnz

    def __post_init__(self) -> None:
        if self.row_start.shape != (self.n + 1,):
            raise ConfigError("row_start must have n+1 entries")
        if self.col_index.shape != self.values.shape:
            raise ConfigError("col_index and values must be congruent")
        if self.row_start[0] != 0 or self.row_start[-1] != self.values.size:
            raise ConfigError("row_start must span [0, nnz]")

    @property
    def nnz(self) -> int:
        """Stored nonzeros."""
        return int(self.values.size)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """y = A x, each y[i] computed in its entirety."""
        if x.shape != (self.n,):
            raise ConfigError(f"x must have length {self.n}")
        products = self.values * x[self.col_index]
        y = np.add.reduceat(
            np.concatenate([products, [0.0]]),
            np.minimum(self.row_start[:-1], products.size),
        )
        # rows with zero entries pick up the next row's sum: mask them
        empty = self.row_start[:-1] == self.row_start[1:]
        y[empty] = 0.0
        return y

    def row_block(self, pid: int, n_procs: int) -> tuple[int, int]:
        """The contiguous row range [lo, hi) assigned to processor
        ``pid`` under the paper's row partitioning."""
        if not 0 <= pid < n_procs:
            raise ConfigError("pid out of range")
        base = self.n // n_procs
        extra = self.n % n_procs
        lo = pid * base + min(pid, extra)
        hi = lo + base + (1 if pid < extra else 0)
        return lo, hi

    def to_csc(self) -> "SparseCSC":
        """Convert to the original column-major layout."""
        order = np.argsort(self.col_index, kind="stable")
        rows = np.repeat(np.arange(self.n), np.diff(self.row_start))
        col_sorted = self.col_index[order]
        col_start = np.zeros(self.n + 1, dtype=np.int64)
        np.add.at(col_start[1:], col_sorted, 1)
        np.cumsum(col_start, out=col_start)
        return SparseCSC(
            n=self.n,
            col_start=col_start,
            row_index=rows[order],
            values=self.values[order],
        )


@dataclass(frozen=True)
class SparseCSC:
    """Column start / row index format (the original NASA layout)."""

    n: int
    col_start: np.ndarray  # n+1
    row_index: np.ndarray  # nnz
    values: np.ndarray  # nnz

    def __post_init__(self) -> None:
        if self.col_start.shape != (self.n + 1,):
            raise ConfigError("col_start must have n+1 entries")
        if self.row_index.shape != self.values.shape:
            raise ConfigError("row_index and values must be congruent")

    @property
    def nnz(self) -> int:
        """Stored nonzeros."""
        return int(self.values.size)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """y = A x via column-wise scatter (Figure 6's loop):
        y[row_index[k]] += a[k] * x[j] — piecemeal accumulation."""
        if x.shape != (self.n,):
            raise ConfigError(f"x must have length {self.n}")
        xj = np.repeat(x, np.diff(self.col_start))
        y = np.zeros(self.n)
        np.add.at(y, self.row_index, self.values * xj)
        return y

    def to_csr(self) -> SparseCSR:
        """The paper's transformation to row start / column index."""
        order = np.argsort(self.row_index, kind="stable")
        cols = np.repeat(np.arange(self.n), np.diff(self.col_start))
        rows_sorted = self.row_index[order]
        row_start = np.zeros(self.n + 1, dtype=np.int64)
        np.add.at(row_start[1:], rows_sorted, 1)
        np.cumsum(row_start, out=row_start)
        return SparseCSR(
            n=self.n,
            row_start=row_start,
            col_index=cols[order],
            values=self.values[order],
        )


def random_sparse_spd(
    n: int, nnz_target: int, *, seed: int = 12, format: str = "csr"
) -> SparseCSR | SparseCSC:
    """A random sparse symmetric positive definite matrix.

    Pattern: ~``nnz_target`` uniformly random off-diagonal entries,
    symmetrized, with a diagonal large enough for strict diagonal
    dominance (hence SPD).  This stands in for the NAS CG matrix
    generator (same density and spectral character for our purposes:
    CG converges, and the access pattern of the matvec is a uniform
    random gather).
    """
    if n < 2 or nnz_target < n:
        raise ConfigError("need n >= 2 and at least one nonzero per row")
    rng = np.random.default_rng(seed)
    n_off = max(0, (nnz_target - n) // 2)
    rows = rng.integers(0, n, size=n_off)
    cols = rng.integers(0, n, size=n_off)
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    # symmetrize
    all_rows = np.concatenate([rows, cols, np.arange(n)])
    all_cols = np.concatenate([cols, rows, np.arange(n)])
    vals = np.concatenate(
        [
            (t := rng.uniform(-1.0, 1.0, size=rows.size)),
            t,
            np.zeros(n),  # diagonal placeholder
        ]
    )
    # deduplicate by (row, col), summing values
    keys = all_rows.astype(np.int64) * n + all_cols
    order = np.argsort(keys, kind="stable")
    keys_s, vals_s = keys[order], vals[order]
    boundary = np.empty(keys_s.size, dtype=bool)
    boundary[0] = True
    np.not_equal(keys_s[1:], keys_s[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    uniq_keys = keys_s[starts]
    uniq_vals = np.add.reduceat(vals_s, starts)
    u_rows = (uniq_keys // n).astype(np.int64)
    u_cols = (uniq_keys % n).astype(np.int64)
    # strict diagonal dominance
    row_abs = np.zeros(n)
    np.add.at(row_abs, u_rows, np.abs(uniq_vals))
    diag_mask = u_rows == u_cols
    uniq_vals[diag_mask] = row_abs[u_rows[diag_mask]] + 1.0
    # assemble CSR (keys are already row-major sorted)
    row_start = np.zeros(n + 1, dtype=np.int64)
    np.add.at(row_start[1:], u_rows, 1)
    np.cumsum(row_start, out=row_start)
    csr = SparseCSR(n=n, row_start=row_start, col_index=u_cols, values=uniq_vals)
    if format == "csr":
        return csr
    if format == "csc":
        return csr.to_csc()
    raise ConfigError(f"unknown format {format!r}")
