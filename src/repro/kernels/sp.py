"""The NAS Scalar Pentadiagonal (SP) application.

"The SP code implements an iterative partial differential equation
solver, that mimics the behavior of computational fluid dynamic codes."
Each iteration computes a right-hand side and then performs three
ADI-style sweeps, each solving independent scalar *pentadiagonal*
(5-band) systems along one grid dimension.

Implemented here as a real solver: a 64^3 (configurable) scalar
transport problem, with a vectorized pentadiagonal Gaussian elimination
along each axis; iterating drives the residual down, which the tests
verify.

The performance story reproduces the paper's Table 3/4:

* **base version** — the large working set plus the *random
  replacement* policy of the sub-cache thrash it: the paper found "a
  big disparity between the expected number of misses in the first
  level cache and the actual misses".  Modelled by a sub-cache
  conflict factor on the unpadded layout.
* **+ data padding/alignment** — removes the pathological conflicts
  (factor 1.0): the paper's 2.54 → 2.14 s/iteration step.
* **+ prefetch** — "communication between processors occurs at the
  beginning of each phase.  By using prefetches at the beginning of
  these phases the performance improved by another 11 %": a
  prefetch-overlap on the inter-processor plane transfers.
* **poststore variant hurts** — receivers get the planes in shared
  state and pay a ring-latency upgrade to write them in the next
  phase, plus the issuer stalls; the paper measured a slowdown.

The grid is partitioned along the outermost dimension; each phase
exchanges boundary planes between neighbours, and the two sweeps
orthogonal to the partitioning also stream remote interior planes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.kernels.costmodel import BarrierCostModel, KernelCostModel, PhaseWork
from repro.kernels.vectorized import shift_stream
from repro.machine.config import MachineConfig, SUBPAGE_BYTES, WORD_BYTES
from repro.memory.streams import AccessStream, concat, sequential, strided

__all__ = ["SpApplication", "SpResult"]

#: Flops per grid point per sweep: pentadiagonal forward elimination +
#: back substitution (5 bands) plus the sweep's RHS contribution.
_FLOPS_PER_POINT_SWEEP = 42.0
#: Flops per grid point for the RHS phase.
_FLOPS_PER_POINT_RHS = 60.0
#: Sub-cache conflict factor of the unpadded (base) layout.
_BASE_CONFLICT_FACTOR = 2.4
#: Fraction of plane-transfer latency hidden by phase-start prefetch.
_PREFETCH_OVERLAP = 0.5
#: Words of cell state redistributed per grid point when a sweep runs
#: orthogonal to the slab partitioning (solution components + RHS —
#: the full SP carries 5-component fields).
_TRANSPOSE_WORDS_PER_POINT = 6.0
#: Field components crossing halo boundaries for the in-slab sweeps.
_HALO_FIELDS = 5.0

_GRID_BASE = 0x0000_0000
_RHS_BASE = 0x4000_0000


@dataclass(frozen=True)
class SpResult:
    """Timing for one configuration."""

    n_procs: int
    time_per_iteration_s: float
    padded: bool
    prefetch: bool
    poststore: bool
    residual: float | None = None


class SpApplication:
    """SP on the simulated KSR (default grid 32^3; the paper used 64^3)."""

    def __init__(
        self,
        config: MachineConfig,
        *,
        grid: int = 32,
        diffusion: float = 0.05,
        seed: int = 5,
    ):
        if grid < 8:
            raise ConfigError("grid must be at least 8^3")
        self.config = config
        self.grid = grid
        self.diffusion = diffusion
        rng = np.random.default_rng(seed)
        self.u = rng.uniform(0.0, 1.0, size=(grid, grid, grid))
        self.forcing = rng.uniform(-0.1, 0.1, size=(grid, grid, grid))
        self.cost_model = KernelCostModel(config)
        self.barrier_model = BarrierCostModel(config)
        # Phase stream content depends only on (phase kind, axis
        # orientation, n_procs, pid): the y and z sweeps build the same
        # streams, padding/prefetch/poststore variants differ only in
        # PhaseWork scalars, and ladders/sweeps revisit processor
        # counts.  Streams are immutable; build each once and reuse
        # (processor p's stream is a shifted copy of processor 0's
        # whenever the slab offset is subpage-aligned).
        self._stream_cache: dict[tuple, AccessStream] = {}

    def _phase_stream(self, key: tuple, pid: int, delta_bytes: int, build) -> AccessStream:
        cache = self._stream_cache
        stream = cache.get(key + (pid,))
        if stream is not None:
            return stream
        stream = None
        if pid:
            stream0 = cache.get(key + (0,))
            if stream0 is not None:
                stream = shift_stream(stream0, pid * delta_bytes)
        if stream is None:
            stream = build()
        cache[key + (pid,)] = stream
        return stream

    @staticmethod
    def paper_size(config: MachineConfig) -> "SpApplication":
        """The paper's 64x64x64 problem."""
        return SpApplication(config, grid=64)

    # ------------------------------------------------------------------
    # Real numerics: ADI iteration with pentadiagonal line solves
    # ------------------------------------------------------------------

    def _penta_solve_lines(self, rhs: np.ndarray) -> np.ndarray:
        """Solve independent pentadiagonal systems along the last axis.

        The operator is I + d*(L4) where L4 is the 1-D fourth-order
        stencil [1, -4, 6, -4, 1] — the scalar pentadiagonal system SP
        factors along each direction.  Vectorized over the leading
        axes; plain banded Gaussian elimination without pivoting (the
        system is diagonally dominant for d < 1/16).
        """
        n = rhs.shape[-1]
        d = self.diffusion
        stencil = np.array([1.0, -4.0, 6.0, -4.0, 1.0]) * d
        # band storage: diag[k] holds A[i, i+k-2]
        bands = np.zeros((5, n))
        for k in range(5):
            bands[k, :] = stencil[k]
        bands[2, :] += 1.0
        # clamp bands at the boundaries
        a2, a1, b0, c1, c2 = (bands[k].copy() for k in range(5))
        a2[:2] = 0.0
        a1[:1] = 0.0
        c1[-1:] = 0.0
        c2[-2:] = 0.0
        x = np.array(rhs, dtype=float, copy=True)
        lead = x.shape[:-1]
        b = np.broadcast_to(b0, lead + (n,)).copy()
        a1v = np.broadcast_to(a1, lead + (n,)).copy()
        c1v = np.broadcast_to(c1, lead + (n,)).copy()
        c2v = np.broadcast_to(c2, lead + (n,)).copy()
        # Forward elimination: for row i, first clear the second
        # sub-diagonal against the (already reduced) row i-2 — which
        # also feeds the first sub-diagonal — then clear the first
        # against row i-1.
        for i in range(1, n):
            if i >= 2:
                m2 = a2[i] / b[..., i - 2]
                a1v[..., i] = a1v[..., i] - m2 * c1v[..., i - 2]
                b[..., i] -= m2 * c2v[..., i - 2]
                x[..., i] -= m2 * x[..., i - 2]
            m1 = a1v[..., i] / b[..., i - 1]
            b[..., i] -= m1 * c1v[..., i - 1]
            if i + 1 <= n - 1:
                c1v[..., i] -= m1 * c2v[..., i - 1]
            x[..., i] -= m1 * x[..., i - 1]
        # back substitution
        x[..., n - 1] /= b[..., n - 1]
        x[..., n - 2] = (x[..., n - 2] - c1v[..., n - 2] * x[..., n - 1]) / b[..., n - 2]
        for i in range(n - 3, -1, -1):
            x[..., i] = (
                x[..., i] - c1v[..., i] * x[..., i + 1] - c2v[..., i] * x[..., i + 2]
            ) / b[..., i]
        return x

    def iterate(self, n_iterations: int = 1) -> float:
        """Run ADI iterations in place; returns the final update norm
        (a decreasing quantity as the solution approaches steady
        state — the tests assert the decrease)."""
        delta = np.inf
        for _ in range(n_iterations):
            rhs = self.u + self.forcing
            x = self._penta_solve_lines(rhs)
            y = np.moveaxis(self._penta_solve_lines(np.moveaxis(x, 1, -1)), -1, 1)
            z = np.moveaxis(self._penta_solve_lines(np.moveaxis(y, 0, -1)), -1, 0)
            delta = float(np.max(np.abs(z - self.u)))
            self.u = z
        return delta

    # ------------------------------------------------------------------
    # Performance model
    # ------------------------------------------------------------------

    def _plane_subpages(self) -> float:
        """Subpages in one grid plane (the unit of phase communication)."""
        return self.grid * self.grid * WORD_BYTES / SUBPAGE_BYTES

    def _sweep_work(
        self,
        pid: int,
        n_procs: int,
        *,
        axis_contiguous: bool,
        padded: bool,
        prefetch: bool,
        poststore: bool,
    ) -> PhaseWork:
        g = self.grid
        points = g * g * g // n_procs
        words = points  # one solution word per point

        def build() -> AccessStream:
            if axis_contiguous:
                grid_stream = sequential(_GRID_BASE + pid * words * 8, words)
            else:
                # sweep orthogonal to memory order: plane-strided accesses
                grid_stream = strided(
                    _GRID_BASE + pid * words * 8,
                    min(words, 65536),
                    stride_words=g,
                )
            return concat(
                [
                    grid_stream,
                    sequential(_RHS_BASE + pid * words * 8, words, write_fraction=0.5),
                ]
            )

        stream = self._phase_stream(
            ("sweep", axis_contiguous, n_procs), pid, words * 8, build
        )
        # Inter-processor communication at phase start.  In-slab
        # sweeps exchange halo planes; the sweep orthogonal to the
        # partitioning redistributes the multi-component cell state
        # (a transpose) — the paper's "communication between
        # processors occurs at the beginning of each phase".
        if axis_contiguous:
            remote = 2.0 * _HALO_FIELDS * self._plane_subpages()
        else:
            remote = (
                _TRANSPOSE_WORDS_PER_POINT
                * points
                * (n_procs - 1)
                / n_procs
                * WORD_BYTES
                / SUBPAGE_BYTES
            )
        if n_procs == 1:
            remote = 0.0
        poststores = remote if poststore else 0.0
        # poststore receivers must upgrade the shared planes to write
        # them in the next phase: extra ring transfers
        if poststore:
            remote *= 1.35
        return PhaseWork(
            name=f"sp-sweep-p{pid}",
            n_active=n_procs,
            flops=points * _FLOPS_PER_POINT_SWEEP,
            int_ops=points * 2.0,
            stream=stream,
            remote_subpages=remote,
            prefetch_overlap=_PREFETCH_OVERLAP if prefetch else 0.0,
            poststores=poststores,
            subcache_conflict_factor=1.0 if padded else _BASE_CONFLICT_FACTOR,
        )

    def _rhs_work(self, pid: int, n_procs: int, *, padded: bool) -> PhaseWork:
        g = self.grid
        points = g * g * g // n_procs

        def build() -> AccessStream:
            return concat(
                [
                    sequential(_GRID_BASE + pid * points * 8, points),
                    sequential(_RHS_BASE + pid * points * 8, points, write_fraction=1.0),
                ]
            )

        stream = self._phase_stream(("rhs", n_procs), pid, points * 8, build)
        return PhaseWork(
            name=f"sp-rhs-p{pid}",
            n_active=n_procs,
            flops=points * _FLOPS_PER_POINT_RHS,
            int_ops=points * 2.0,
            stream=stream,
            subcache_conflict_factor=1.0 if padded else _BASE_CONFLICT_FACTOR,
        )

    def run(
        self,
        n_procs: int,
        *,
        padded: bool = True,
        prefetch: bool = True,
        poststore: bool = False,
    ) -> SpResult:
        """Model the time per iteration at ``n_procs``."""
        if n_procs < 1 or n_procs > self.config.n_cells:
            raise ConfigError("processor count out of range")
        cycles = 0.0
        rhs_cost = self.cost_model.parallel_time(
            [self._rhs_work(p, n_procs, padded=padded) for p in range(n_procs)]
        )
        cycles += rhs_cost.total_cycles
        for axis_contiguous in (True, False, False):  # x, y, z sweeps
            cost = self.cost_model.parallel_time(
                [
                    self._sweep_work(
                        p,
                        n_procs,
                        axis_contiguous=axis_contiguous,
                        padded=padded,
                        prefetch=prefetch,
                        poststore=poststore,
                    )
                    for p in range(n_procs)
                ]
            )
            cycles += cost.total_cycles
        cycles += 4.0 * self.barrier_model.barrier_cycles(n_procs)
        return SpResult(
            n_procs=n_procs,
            time_per_iteration_s=self.config.seconds(cycles),
            padded=padded,
            prefetch=prefetch,
            poststore=poststore,
        )

    def optimization_ladder(self, n_procs: int = 30) -> list[SpResult]:
        """Table 4: base → padding/alignment → prefetch."""
        return [
            self.run(n_procs, padded=False, prefetch=False),
            self.run(n_procs, padded=True, prefetch=False),
            self.run(n_procs, padded=True, prefetch=True),
        ]

    def scaling(self, proc_counts: list[int]) -> list[SpResult]:
        """Table 3: time per iteration across processors."""
        return [self.run(p) for p in proc_counts]
