"""From-scratch NAS parallel benchmark kernels (section 3.3).

Each kernel really computes (NumPy) so results are verifiable against
NAS-style self-checks, while its memory behaviour on the simulated KSR
is modelled at subpage granularity through
:mod:`repro.kernels.costmodel`.  Problem sizes default to the paper's
(CG: n=14000 / 2.03 M nonzeros; IS: 2^23 keys; SP: 64^3) with smaller
"test-scale" presets for quick runs.
"""

from repro.kernels.nas_rng import NasRandom
from repro.kernels.costmodel import KernelCostModel, PhaseWork, PhaseCost, BarrierCostModel
from repro.kernels.sparse import SparseCSC, SparseCSR, random_sparse_spd
from repro.kernels.ep import EpKernel, EpResult
from repro.kernels.cg import CgKernel, CgResult
from repro.kernels.is_sort import IsKernel, IsResult
from repro.kernels.sp import SpApplication, SpResult

__all__ = [
    "NasRandom",
    "KernelCostModel",
    "PhaseWork",
    "PhaseCost",
    "BarrierCostModel",
    "SparseCSC",
    "SparseCSR",
    "random_sparse_spd",
    "EpKernel",
    "EpResult",
    "CgKernel",
    "CgResult",
    "IsKernel",
    "IsResult",
    "SpApplication",
    "SpResult",
]
