"""Phase-level cost model: work descriptors → simulated KSR time.

The paper explains every kernel result in terms of four quantities:
compute throughput, sub-cache / local-cache miss behaviour, remote
(ring) transfer counts, and ring saturation.  This module composes
exactly those terms.

A kernel phase on one processor is described by a :class:`PhaseWork`;
:class:`KernelCostModel.phase_cost` prices it:

``compute``
    flops x cycles/flop + integer/address ops x cycles/op.  The
    flop rate is calibrated so a compute-bound kernel sustains the
    ~11 MFLOPS/cell the paper measured for EP (peak is 40).
``sub-cache``
    every represented word access costs one issue cycle; each subpage
    miss fills two 64-byte sub-blocks from the local cache; each fresh
    2 KB block allocation adds the measured +50 % penalty.
``local cache``
    warm-state misses (from the frame-level StatCache model) split
    into cold first-touches (local creation) and capacity/coherence
    misses, which in a COMA machine are *remote* — evicted data lives
    in other cells' caches.
``remote``
    each remote subpage transfer pays the load-dependent ring latency
    from :class:`repro.ring.contention.RingLoadModel`; prefetching
    overlaps a caller-stated fraction of it with compute.

Barrier costs between phases come from :class:`BarrierCostModel`,
calibrated against the event-level barrier simulations of section 3.2
(see ``tests/kernels/test_costmodel.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigError
from repro.machine.config import MachineConfig
from repro.kernels.vectorized import MemoizedAnalyticCache
from repro.memory.analytic_cache import AnalyticCache
from repro.memory.streams import AccessStream
from repro.ring.contention import RingLoadModel

__all__ = ["PhaseWork", "PhaseCost", "KernelCostModel", "BarrierCostModel"]

#: Cycles per floating-point operation, pipeline-realistic rather than
#: peak: calibrated so EP sustains ~11 MFLOPS/cell at 20 MHz.
CYCLES_PER_FLOP = 1.8
#: Cycles per integer/address operation (2-wide issue).
CYCLES_PER_INT_OP = 0.5
#: Cycles per represented word access (issue + pipelined sub-cache).
CYCLES_PER_WORD_ACCESS = 1.0
#: A subpage miss in the sub-cache fills two 64 B sub-blocks.
SUBBLOCK_FILLS_PER_SUBPAGE = 2


@dataclass(frozen=True)
class PhaseWork:
    """One processor's work in one parallel phase.

    ``stream`` describes this processor's data accesses at subpage
    granularity; ``remote_subpages`` adds coherence-forced transfers
    the cache model cannot see (data another processor wrote since the
    last phase — invalidated place-holders that must be re-fetched).
    """

    name: str
    n_active: int = 1
    flops: float = 0.0
    int_ops: float = 0.0
    stream: AccessStream | None = None
    #: Model the stream in its warm steady state (kernels iterate).
    warm: bool = True
    #: Extra remote subpage transfers forced by coherence.
    remote_subpages: float = 0.0
    #: Fraction of remote latency overlapped by prefetch (0..1).
    prefetch_overlap: float = 0.0
    #: Extra poststore instructions issued (each stalls the issuer
    #: briefly and adds a ring packet to the phase's traffic).
    poststores: float = 0.0
    #: Multiplier applied to all stream-derived costs: kernels with
    #: enormous gather traces (IS ranks 2^23 keys) pass a
    #: systematically subsampled stream and scale the results back up.
    stream_scale: float = 1.0
    #: Multiplier on sub-cache miss traffic, modelling pathological
    #: conflict behaviour the StatCache model cannot see (SP's
    #: unpadded layout thrashing the random-replacement sub-cache).
    subcache_conflict_factor: float = 1.0
    #: Flat additional cycles (lock pipelines, library overheads).
    extra_cycles: float = 0.0

    def __post_init__(self) -> None:
        if self.n_active < 1:
            raise ConfigError("a phase needs at least one active processor")
        if not 0.0 <= self.prefetch_overlap <= 1.0:
            raise ConfigError("prefetch_overlap must be in [0, 1]")
        if self.flops < 0 or self.int_ops < 0 or self.remote_subpages < 0:
            raise ConfigError("work quantities must be non-negative")
        if self.stream_scale <= 0 or self.subcache_conflict_factor < 1.0:
            raise ConfigError(
                "stream_scale must be positive and conflict factor >= 1"
            )


@dataclass(frozen=True)
class PhaseCost:
    """Priced phase (cycles, one processor)."""

    name: str
    compute_cycles: float
    subcache_cycles: float
    local_cache_cycles: float
    remote_cycles: float
    n_remote_transfers: float
    effective_remote_latency: float
    saturated: bool
    #: Fraction of ring slot capacity this phase consumes (including
    #: poststore broadcast packets).
    ring_utilization: float = 0.0

    @property
    def total_cycles(self) -> float:
        """All components."""
        return (
            self.compute_cycles
            + self.subcache_cycles
            + self.local_cache_cycles
            + self.remote_cycles
        )


class KernelCostModel:
    """Prices :class:`PhaseWork` against one machine configuration."""

    def __init__(self, config: MachineConfig):
        self.config = config
        # With batching enabled, cache simulations are memoized by
        # stream content — same floats, fewer fixpoint solves (see
        # repro.kernels.vectorized for the exactness argument).
        cache_cls = MemoizedAnalyticCache if config.enable_batching else AnalyticCache
        self.subcache_model = cache_cls(config.subcache)
        self.local_model = cache_cls(config.local_cache)
        self.load_model = RingLoadModel(config.ring)

    def phase_cost(self, work: PhaseWork) -> PhaseCost:
        """Simulated cycles for one processor's share of the phase."""
        lat = self.config.latency
        compute = work.flops * CYCLES_PER_FLOP + work.int_ops * CYCLES_PER_INT_OP
        compute += work.poststores * lat.poststore_issue_cycles
        compute += work.extra_cycles
        subcache_cycles = 0.0
        local_cycles = 0.0
        remote_transfers = work.remote_subpages
        if work.stream is not None and work.stream.n_touches:
            iterations = 2 if work.warm else 1
            scale = work.stream_scale
            sc = self.subcache_model.simulate(work.stream, iterations=iterations)
            subcache_cycles += scale * sc.n_word_accesses * CYCLES_PER_WORD_ACCESS
            subcache_cycles += (
                scale
                * work.subcache_conflict_factor
                * sc.expected_line_misses
                * SUBBLOCK_FILLS_PER_SUBPAGE
                * lat.local_cache_hit_cycles
            )
            subcache_cycles += scale * sc.expected_frame_allocs * lat.block_alloc_cycles
            lc = self.local_model.simulate(work.stream, iterations=iterations)
            # Cold first touches create data locally (COMA first touch);
            # warm misses mean the data was displaced or is remote.
            cold = min(lc.cold_line_misses, lc.expected_line_misses)
            capacity_misses = scale * (lc.expected_line_misses - cold)
            local_cycles += scale * cold * lat.local_cache_hit_cycles
            local_cycles += scale * lc.expected_frame_allocs * lat.page_alloc_cycles
            remote_transfers += capacity_misses
            # Writes to shared data pay the exclusive-upgrade extra.
            local_cycles += (
                scale
                * work.stream.write_fraction
                * lc.expected_line_misses
                * lat.remote_write_extra_cycles
            )
        # Ring pricing: think time is everything that is not waiting on
        # the ring, spread across this phase's traffic.  Poststore
        # broadcast packets occupy slots exactly like demand transfers,
        # so they count toward the load even though the issuer does not
        # block on them.
        ring_packets = remote_transfers + work.poststores
        think = (
            (compute + subcache_cycles + local_cycles) / ring_packets
            if ring_packets > 0
            else 0.0
        )
        eff_latency = self.load_model.effective_latency(work.n_active, think)
        saturated = self.load_model.is_saturated(work.n_active, think)
        utilization = (
            self.load_model.utilization(work.n_active, think) if ring_packets > 0 else 0.0
        )
        remote_cycles = remote_transfers * eff_latency * (1.0 - work.prefetch_overlap)
        # Prefetching can hide latency only behind actual work.
        hidden = remote_transfers * eff_latency * work.prefetch_overlap
        exposed_shortfall = max(0.0, hidden - (compute + subcache_cycles))
        remote_cycles += exposed_shortfall
        return PhaseCost(
            name=work.name,
            compute_cycles=compute,
            subcache_cycles=subcache_cycles,
            local_cache_cycles=local_cycles,
            remote_cycles=remote_cycles,
            n_remote_transfers=remote_transfers,
            effective_remote_latency=eff_latency,
            saturated=saturated,
            ring_utilization=utilization,
        )

    def parallel_time(self, works: Sequence[PhaseWork]) -> PhaseCost:
        """Phase time = the slowest processor's cost (others wait at
        the phase-closing barrier).  Returns that processor's cost."""
        if not works:
            raise ConfigError("a phase needs at least one work descriptor")
        costs = [self.phase_cost(w) for w in works]
        return max(costs, key=lambda c: c.total_cycles)


@dataclass
class BarrierCostModel:
    """Cost of the system barrier closing each phase.

    The closed form ``(a + b * ceil(log2 P)) * remote_latency`` is
    calibrated against the event-level tree(M)/system barrier
    simulations (tests pin the agreement); the paper itself notes that
    for the kernels "the time for synchronization in this algorithm is
    negligible compared to the rest of the computation".
    """

    config: MachineConfig
    base_factor: float = 2.5
    per_round_factor: float = 3.3

    def barrier_cycles(self, n_procs: int) -> float:
        """Cycles for an n-way system barrier episode."""
        if n_procs < 1:
            raise ConfigError("barrier needs >= 1 processor")
        if n_procs == 1:
            return 0.0
        rounds = max(1, (n_procs - 1).bit_length())
        latency = self.config.remote_latency_cycles
        cost = (self.base_factor + self.per_round_factor * rounds) * latency
        if n_procs > self.config.cells_per_ring:
            # crossing the level-1 ring: the paper's "sudden jump"
            cost += self.config.ring.inter_ring_extra_cycles * 2
        return cost

    def barrier_seconds(self, n_procs: int) -> float:
        """Seconds for an n-way barrier episode."""
        return self.config.seconds(self.barrier_cycles(n_procs))
