"""The NAS parallel benchmark pseudorandom number generator.

The NAS suite (Bailey et al., RNR-91-002) specifies the linear
congruential generator

    x_{k+1} = a * x_k  (mod 2^46),   a = 5^13,  x_0 = 271828183

producing uniforms in (0, 1) as ``x_k * 2^-46``.  Its key property for
parallel benchmarks is *leapfrogging*: ``a^n mod 2^46`` is computable
in O(log n), so processor ``p`` can jump straight to element
``p * chunk`` of the sequence and generate its block independently —
exactly how EP distributes work with "virtually no communication".

This implementation is vectorized: a block of ``n`` values is produced
by one O(log n) seed-jump plus an O(n) scan using precomputed stride
multipliers, all in integer NumPy (Python ints for the modular
arithmetic, which is exact).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

__all__ = ["NasRandom", "MODULUS", "DEFAULT_A", "DEFAULT_SEED"]

MODULUS = 1 << 46
_MASK = MODULUS - 1
DEFAULT_A = 5**13
DEFAULT_SEED = 271828183


class NasRandom:
    """The NAS LCG with O(log n) skip-ahead.

    >>> r = NasRandom()
    >>> u = r.block(0, 4)
    >>> all((0 < x) & (x < 1) for x in u)
    True
    >>> # leapfrog consistency: block(2,2) == block(0,4)[2:]
    >>> list(r.block(2, 2)) == list(r.block(0, 4)[2:])
    True
    """

    def __init__(self, seed: int = DEFAULT_SEED, a: int = DEFAULT_A):
        if not 0 < seed < MODULUS or seed % 2 == 0:
            raise ConfigError("seed must be an odd integer in (0, 2^46)")
        if a % 2 == 0:
            raise ConfigError("multiplier must be odd")
        self.seed = seed
        self.a = a % MODULUS

    def skip_multiplier(self, n: int) -> int:
        """``a^n mod 2^46`` by binary exponentiation."""
        if n < 0:
            raise ConfigError("cannot skip backwards")
        return pow(self.a, n, MODULUS)

    def state_at(self, k: int) -> int:
        """The raw LCG state x_k."""
        return (self.seed * self.skip_multiplier(k)) % MODULUS

    _CHUNK = 1 << 14

    def _stride_multipliers(self) -> tuple[np.ndarray, np.ndarray]:
        """(hi, lo) 23-bit halves of ``a^j mod 2^46`` for j < _CHUNK."""
        cached = getattr(self, "_mult_cache", None)
        if cached is not None:
            return cached
        mults = np.empty(self._CHUNK, dtype=np.uint64)
        x = 1
        for j in range(self._CHUNK):
            mults[j] = x
            x = (x * self.a) & _MASK
        hi = mults >> np.uint64(23)
        lo = mults & np.uint64((1 << 23) - 1)
        self._mult_cache = (hi, lo)
        return self._mult_cache

    def block(self, start: int, count: int) -> np.ndarray:
        """Uniforms u_{start} .. u_{start+count-1} as float64.

        Vectorized with the classic NAS 23-bit split (the same trick
        the reference ``randlc``/``vranlc`` use to stay exact in
        double-width-free arithmetic): with s = s_hi*2^23 + s_lo and
        m = m_hi*2^23 + m_lo,

            s*m mod 2^46
              = (((s_hi*m_lo + s_lo*m_hi) mod 2^23)*2^23 + s_lo*m_lo)
                mod 2^46

        where every partial product fits comfortably in 64 bits.  Each
        chunk takes one O(log n) Python-int skip for its seed and one
        vectorized multiply for its values.
        """
        if count < 0:
            raise ConfigError("count must be non-negative")
        if count == 0:
            return np.empty(0)
        mask23 = np.uint64((1 << 23) - 1)
        mask46 = np.uint64(_MASK)
        sh23 = np.uint64(23)
        m_hi, m_lo = self._stride_multipliers()
        out = np.empty(count)
        pos = 0
        while pos < count:
            n = min(self._CHUNK, count - pos)
            seed = self.state_at(start + 1 + pos)  # NAS: u_k uses x_{k+1}
            s_hi = np.uint64(seed >> 23)
            s_lo = np.uint64(seed & ((1 << 23) - 1))
            cross = (s_lo * m_hi[:n] + s_hi * m_lo[:n]) & mask23
            states = (s_lo * m_lo[:n] + (cross << sh23)) & mask46
            out[pos : pos + n] = states
            pos += n
        return out * (1.0 / MODULUS)

    def pairs(self, start: int, count: int) -> tuple[np.ndarray, np.ndarray]:
        """``count`` (x, y) pairs on (0,1)^2 drawn as consecutive
        sequence elements (2k, 2k+1) — EP's sampling scheme."""
        flat = self.block(2 * start, 2 * count)
        return flat[0::2], flat[1::2]
