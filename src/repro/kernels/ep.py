"""The NAS Embarrassingly Parallel (EP) kernel.

"EP ... evaluates integrals by means of pseudorandom trials and is used
in many Monte-Carlo simulations."  Pairs of NAS-LCG uniforms are mapped
to (-1,1)^2; for pairs inside the unit circle the Box-Muller-style
transform produces Gaussian deviates that are tallied into ten annular
bins by max(|X|,|Y|).

The computation is real (NumPy); the performance model is a single
parallel phase of pure floating point with a tiny final reduction —
which is why the paper saw linear speedup and a sustained ~11 MFLOPS
per cell (the number our cycles-per-flop calibration reproduces).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.kernels.costmodel import BarrierCostModel, KernelCostModel, PhaseWork
from repro.kernels.nas_rng import NasRandom
from repro.machine.config import MachineConfig
from repro.memory.streams import sequential

__all__ = ["EpKernel", "EpResult"]

#: The resident working set of the tally loop — a few KB of private
#: bins — modelled as one small stream, shared across every pricing
#: call (streams are immutable).
_TALLY_STREAM = sequential(0, 16, write_fraction=0.5)

#: Average floating-point operations per generated pair: generation
#: (normalisation, scaling) + the squared radius test, plus the
#: log/sqrt/divide transform (weighted by the pi/4 acceptance rate)
#: with transcendentals costed at their multi-flop expansions — the
#: NAS flop-counting convention.
FLOPS_PER_PAIR = 22.0


@dataclass(frozen=True)
class EpResult:
    """Computed results plus modelled timing for one processor count."""

    n_pairs: int
    n_procs: int
    counts: np.ndarray  # 10 annulus bins
    sum_x: float
    sum_y: float
    n_accepted: int
    time_s: float
    mflops_per_cell: float

    def verify(self) -> None:
        """NAS-style self-checks: tallies consistent, acceptance ratio
        near pi/4, deviate sums near zero relative to the sample."""
        if int(self.counts.sum()) != self.n_accepted:
            raise AssertionError("annulus counts do not add up")
        acceptance = self.n_accepted / self.n_pairs
        if abs(acceptance - np.pi / 4) > 0.01:
            raise AssertionError(f"acceptance ratio {acceptance:.4f} far from pi/4")
        scale = max(1.0, np.sqrt(self.n_accepted))
        if abs(self.sum_x) > 4 * scale or abs(self.sum_y) > 4 * scale:
            raise AssertionError("Gaussian sums inconsistent with zero mean")


class EpKernel:
    """EP with the paper's block distribution of the pair index space."""

    def __init__(self, config: MachineConfig, *, n_pairs: int = 1 << 20, seed_rng: NasRandom | None = None):
        if n_pairs < 1:
            raise ConfigError("need at least one pair")
        self.config = config
        self.n_pairs = n_pairs
        self.rng = seed_rng if seed_rng is not None else NasRandom()
        self.cost_model = KernelCostModel(config)
        self.barrier_model = BarrierCostModel(config)

    # ------------------------------------------------------------------
    # Real computation
    # ------------------------------------------------------------------

    def compute_block(self, start: int, count: int) -> tuple[np.ndarray, float, float, int]:
        """Tally one processor's block of pairs."""
        u, v = self.rng.pairs(start, count)
        x = 2.0 * u - 1.0
        y = 2.0 * v - 1.0
        t = x * x + y * y
        accept = (t <= 1.0) & (t > 0.0)
        xa, ya, ta = x[accept], y[accept], t[accept]
        factor = np.sqrt(-2.0 * np.log(ta) / ta)
        gx = xa * factor
        gy = ya * factor
        bins = np.maximum(np.abs(gx), np.abs(gy)).astype(np.int64)
        counts = np.bincount(np.clip(bins, 0, 9), minlength=10)
        return counts, float(gx.sum()), float(gy.sum()), int(accept.sum())

    def run(self, n_procs: int) -> EpResult:
        """Compute the full problem and model its time on ``n_procs``."""
        if n_procs < 1 or n_procs > self.config.n_cells:
            raise ConfigError("processor count out of range")
        counts = np.zeros(10, dtype=np.int64)
        sum_x = sum_y = 0.0
        accepted = 0
        block = -(-self.n_pairs // n_procs)
        max_pairs = 0
        for p in range(n_procs):
            start = p * block
            count = min(block, self.n_pairs - start)
            if count <= 0:
                break
            c, sx, sy, na = self.compute_block(start, count)
            counts += c
            sum_x += sx
            sum_y += sy
            accepted += na
            max_pairs = max(max_pairs, count)
        time_s = self._model_time(n_procs, max_pairs)
        mflops = self.n_pairs * FLOPS_PER_PAIR / time_s / 1e6 / n_procs
        return EpResult(
            n_pairs=self.n_pairs,
            n_procs=n_procs,
            counts=counts,
            sum_x=sum_x,
            sum_y=sum_y,
            n_accepted=accepted,
            time_s=time_s,
            mflops_per_cell=mflops,
        )

    # ------------------------------------------------------------------
    # Performance model
    # ------------------------------------------------------------------

    def _model_time(self, n_procs: int, pairs_per_proc: int) -> float:
        """One parallel phase + one reduction + one barrier."""
        main = PhaseWork(
            name="ep-main",
            n_active=n_procs,
            flops=pairs_per_proc * FLOPS_PER_PAIR,
            int_ops=pairs_per_proc * 4.0,  # LCG updates and bin index math
            stream=_TALLY_STREAM,
        )
        cost = self.cost_model.phase_cost(main)
        # final reduction: every processor ships 12 words (one subpage)
        reduction = PhaseWork(
            name="ep-reduce", n_active=n_procs, remote_subpages=1.0 if n_procs > 1 else 0.0
        )
        red_cost = self.cost_model.phase_cost(reduction)
        cycles = (
            cost.total_cycles
            + red_cost.total_cycles
            + self.barrier_model.barrier_cycles(n_procs)
        )
        return self.config.seconds(cycles)
