"""The NAS Conjugate Gradient (CG) kernel.

"The CG kernel computes an approximation to the smallest eigenvalue of
a sparse symmetric positive definite matrix" — operationally, repeated
CG solves whose cost is >90 % sparse matvec, which is the only part the
authors parallelized.

Structure per iteration on the simulated machine:

* **parallel matvec** — each processor owns a contiguous block of rows
  (CSR layout, the paper's transformed format): streams its slice of
  ``row_start``/``col_index``/``values`` sequentially, gathers ``x``
  through the real column indices, writes its ``y`` block.  The parts
  of ``x`` written by other processors since the previous iteration
  are invalidated place-holders that must be re-fetched over the ring.
* **serial vector section** — dots and axpys on one processor, which
  must pull every other processor's vector segments remotely: the
  remote-reference growth that explains the paper's 16 → 32 speedup
  drop ("the processor that executes the serial code has more data to
  fetch from all the processors").
* optional **poststore propagation**: producers push their segments as
  they are computed, shrinking the serial section's stalls at the cost
  of parallel-phase ring traffic — effective at moderate P, mitigated
  near saturation (exactly the paper's observation: ~3 % at 16, more
  below, less above).

The numerics are real: :meth:`CgKernel.solve` runs conjugate gradient
to convergence on the generated SPD system and the tests check the
residual; both sparse layouts produce identical results.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.kernels.costmodel import BarrierCostModel, KernelCostModel, PhaseWork
from repro.kernels.sparse import SparseCSR, random_sparse_spd
from repro.machine.config import MachineConfig, SUBPAGE_BYTES, WORD_BYTES
from repro.memory.streams import AccessStream, concat, gather, sequential

__all__ = ["CgKernel", "CgResult"]

#: Address-map bases for the cost-model streams (disjoint regions).
_A_BASE = 0x0000_0000
_COL_BASE = 0x4000_0000
_ROW_BASE = 0x8000_0000
_X_BASE = 0x9000_0000
_Y_BASE = 0xA000_0000
_VEC_BASE = 0xB000_0000

#: Flops of the serial vector section per iteration, in units of n:
#: two dot products, three axpys, a norm — the NAS CG inner loop.
_SERIAL_FLOPS_PER_N = 10.0
#: Distinct vectors the serial section walks.
_SERIAL_VECTORS = 4


@dataclass(frozen=True)
class CgResult:
    """Timing for one processor count (numerics live on the kernel)."""

    n_procs: int
    time_s: float
    parallel_s: float
    serial_s: float
    barrier_s: float
    use_poststore: bool
    saturated: bool


class CgKernel:
    """CG on the simulated KSR.

    ``n``/``nnz_target`` default to a test scale; pass
    ``CgKernel.paper_size(config)`` for the full n=14000 / 2.03 M-nonzero
    problem of Table 1.
    """

    def __init__(
        self,
        config: MachineConfig,
        *,
        n: int = 1400,
        nnz_target: int = 203_000,
        iterations: int = 25,
        seed: int = 12,
    ):
        if iterations < 1:
            raise ConfigError("need at least one iteration")
        self.config = config
        self.iterations = iterations
        self.matrix: SparseCSR = random_sparse_spd(n, nnz_target, seed=seed)
        self.cost_model = KernelCostModel(config)
        self.barrier_model = BarrierCostModel(config)
        # Stream content depends only on (pid, n_procs) — poststore and
        # prefetch variants differ in PhaseWork scalars, so a scaling
        # sweep rebuilds the same gather-heavy streams many times over.
        # Streams are immutable; share them.
        self._matvec_streams: dict[tuple[int, int], AccessStream] = {}
        self._serial_stream: AccessStream | None = None

    @staticmethod
    def paper_size(config: MachineConfig, *, iterations: int = 400) -> "CgKernel":
        """The paper's problem: n = 14000, ~2.03 M nonzeros."""
        return CgKernel(config, n=14000, nnz_target=2_030_000, iterations=iterations)

    @property
    def n(self) -> int:
        """Matrix dimension."""
        return self.matrix.n

    # ------------------------------------------------------------------
    # Real numerics
    # ------------------------------------------------------------------

    def solve(self, max_iter: int | None = None, tol: float = 1e-10) -> tuple[np.ndarray, float, int]:
        """Conjugate gradient for A z = b with b = A·1 (known solution).

        Returns (z, final residual norm, iterations used).
        """
        A = self.matrix
        b = A.matvec(np.ones(A.n))
        z = np.zeros(A.n)
        r = b.copy()
        p = r.copy()
        rho = float(r @ r)
        it = 0
        limit = max_iter if max_iter is not None else 10 * A.n
        while np.sqrt(rho) > tol and it < limit:
            q = A.matvec(p)
            alpha = rho / float(p @ q)
            z += alpha * p
            r -= alpha * q
            rho_new = float(r @ r)
            p = r + (rho_new / rho) * p
            rho = rho_new
            it += 1
        return z, float(np.sqrt(rho)), it

    # ------------------------------------------------------------------
    # Performance model
    # ------------------------------------------------------------------

    def _matvec_work(self, pid: int, n_procs: int, use_poststore: bool) -> PhaseWork:
        A = self.matrix
        lo, hi = A.row_block(pid, n_procs)
        k_lo, k_hi = int(A.row_start[lo]), int(A.row_start[hi])
        nnz_p = k_hi - k_lo
        rows_p = hi - lo
        stream = self._matvec_streams.get((pid, n_procs))
        if stream is None:
            stream = concat(
                [
                    sequential(_ROW_BASE + lo * WORD_BYTES, rows_p + 1),
                    sequential(_COL_BASE + k_lo * WORD_BYTES, nnz_p),
                    sequential(_A_BASE + k_lo * WORD_BYTES, nnz_p),
                    gather(_X_BASE, A.col_index[k_lo:k_hi]),
                    sequential(_Y_BASE + lo * WORD_BYTES, rows_p, write_fraction=1.0),
                ]
            )
            self._matvec_streams[(pid, n_procs)] = stream
        # x segments written by the other processors last iteration are
        # invalidated place-holders: remote re-fetches.
        x_subpages = self.n * WORD_BYTES / SUBPAGE_BYTES
        remote = x_subpages * (n_procs - 1) / n_procs if n_procs > 1 else 0.0
        # poststore is a per-store instruction: one broadcast per
        # updated word of this processor's segment ("the multiple
        # (potentially simultaneous) poststores being issued by all the
        # processors" are what push the ring toward saturation)
        poststores = self.n / n_procs if use_poststore else 0.0
        return PhaseWork(
            name=f"cg-matvec-p{pid}",
            n_active=n_procs,
            flops=2.0 * nnz_p,
            int_ops=2.0 * nnz_p,
            stream=stream,
            remote_subpages=remote,
            prefetch_overlap=0.3,  # the paper used prefetch "extensively"
            poststores=poststores,
        )

    def _serial_work(self, n_procs: int, use_poststore: bool, parallel_utilization: float) -> PhaseWork:
        n = self.n
        stream = self._serial_stream
        if stream is None:
            stream = concat(
                [
                    sequential(_VEC_BASE + k * 0x0100_0000, n, write_fraction=0.4)
                    for k in range(_SERIAL_VECTORS)
                ]
            )
            self._serial_stream = stream
        vec_subpages = n * WORD_BYTES / SUBPAGE_BYTES
        remote = (
            2.0 * vec_subpages * (n_procs - 1) / n_procs if n_procs > 1 else 0.0
        )
        if use_poststore and n_procs > 1:
            # Producers pushed their segments during the parallel phase;
            # the serial processor finds them locally valid — unless the
            # ring was too busy to deliver in time.  Delivery collapses
            # as the parallel phase's ring load (demand traffic plus the
            # poststore packets themselves) approaches saturation.
            delivered = max(0.0, 0.9 - 4.5 * parallel_utilization)
            remote *= 1.0 - delivered
        return PhaseWork(
            name="cg-serial",
            n_active=1,
            flops=_SERIAL_FLOPS_PER_N * n,
            int_ops=2.0 * n,
            stream=stream,
            remote_subpages=remote,
        )

    def run(self, n_procs: int, *, use_poststore: bool = False) -> CgResult:
        """Model the full run at ``n_procs`` processors."""
        if n_procs < 1 or n_procs > self.config.n_cells:
            raise ConfigError("processor count out of range")
        works = [self._matvec_work(p, n_procs, use_poststore) for p in range(n_procs)]
        par_cost = self.cost_model.parallel_time(works)
        utilization = par_cost.ring_utilization
        ser_cost = self.cost_model.phase_cost(
            self._serial_work(n_procs, use_poststore, utilization)
        )
        barrier = 2.0 * self.barrier_model.barrier_cycles(n_procs)
        per_iter = par_cost.total_cycles + ser_cost.total_cycles + barrier
        total = per_iter * self.iterations
        sec = self.config.seconds
        return CgResult(
            n_procs=n_procs,
            time_s=sec(total),
            parallel_s=sec(par_cost.total_cycles * self.iterations),
            serial_s=sec(ser_cost.total_cycles * self.iterations),
            barrier_s=sec(barrier * self.iterations),
            use_poststore=use_poststore,
            saturated=par_cost.saturated,
        )

    def scaling(self, proc_counts: list[int], *, use_poststore: bool = False) -> list[CgResult]:
        """Run the model across a processor sweep."""
        return [self.run(p, use_poststore=use_poststore) for p in proc_counts]
