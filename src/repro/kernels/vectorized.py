"""Vectorized kernel-phase pricing: memoized cache simulation and
translated stream construction.

The NAS kernel models price every processor's phase through
:meth:`repro.memory.analytic_cache.AnalyticCache.simulate`, which is a
pure function of the stream *content* (subpage ids, weights, write
fraction) and the iteration count.  Sweeps evaluate the same content
over and over: SP's y and z sweeps build identical per-processor
streams, poststore/prefetch/padding variants differ only in scalars
applied *outside* the cache model, and ``scaling()`` re-runs every
processor count of a ladder.  :class:`MemoizedAnalyticCache` exploits
that purity with a content-addressed result cache.

Two refinements make the memo hit far more often than literal equality
would:

* **translation invariance** — the model depends on subpage ids only
  through equality patterns (reuse distances, run boundaries) and
  frame ids ``subpages // alloc_subpages``.  Translating every id by a
  multiple of the allocation unit changes neither, so the memo key is
  the digest of the *relative* id array plus ``first_subpage mod
  alloc_subpages``: processor ``p``'s stream, a shifted copy of
  processor 0's, prices once for all ``p`` whenever the shift is
  frame-aligned.
* **digest caching** — :class:`~repro.memory.streams.AccessStream` is
  frozen but not slotted, so the digest is computed once per stream
  object and pinned on it (``object.__setattr__``), making repeat
  lookups O(1).

:func:`shift_stream` is the construction-side dual: any stream
translated by a whole number of subpages equals the stream rebuilt at
the shifted base (every builder in :mod:`repro.memory.streams` maps
words to subpages by integer division, so a subpage-aligned shift
moves all ids uniformly and preserves every run boundary).  Kernels
use it to derive per-processor streams from processor 0's without
re-running ``arange``/``_compress``.

Everything here is exact — memoized pricing returns the very float
values the unmemoized model computes, and shifted construction the very
arrays direct construction builds — so only the memo (a memory-for-time
trade) is gated behind ``MachineConfig.enable_batching``; shifted
construction is unconditional.  ``tests/kernels/test_vectorized.py``
pins both equalities.
"""

from __future__ import annotations

import struct
from hashlib import blake2b

import numpy as np

from repro.machine.config import SUBPAGE_BYTES, CacheConfig
from repro.memory.analytic_cache import AnalyticCache, CacheModelResult
from repro.memory.streams import AccessStream

__all__ = ["MemoizedAnalyticCache", "shift_stream", "stream_fingerprint"]

#: Attribute name the cached fingerprint is pinned under (the stream
#: dataclass is frozen; ``object.__setattr__`` bypasses that for this
#: derived, content-determined value).
_FP_ATTR = "_vectorized_fingerprint"


def stream_fingerprint(stream: AccessStream) -> tuple[bytes, int]:
    """``(relative-content digest, first subpage id)`` of a stream.

    The digest covers the subpage ids *relative to the first*, the
    weights and the write fraction — everything
    :meth:`AnalyticCache.simulate` reads except the absolute position,
    which re-enters the memo key only modulo the cache's allocation
    unit.  Computed once per stream object, then cached on it.
    """
    cached = getattr(stream, _FP_ATTR, None)
    if cached is not None:
        return cached
    ids = stream.subpages
    first = int(ids[0]) if ids.size else 0
    h = blake2b(digest_size=16)
    h.update(np.ascontiguousarray(ids - first).tobytes())
    h.update(np.ascontiguousarray(stream.weights).tobytes())
    h.update(struct.pack("<d", stream.write_fraction))
    fingerprint = (h.digest(), first)
    object.__setattr__(stream, _FP_ATTR, fingerprint)
    return fingerprint


class MemoizedAnalyticCache(AnalyticCache):
    """An :class:`AnalyticCache` with a content-addressed result memo.

    Safe to substitute anywhere: :class:`CacheModelResult` is frozen,
    and two streams hash to the same key only when the model provably
    computes identical results for them (same relative content, same
    frame alignment, same iteration count).  Installed by
    :class:`repro.kernels.costmodel.KernelCostModel` when the machine
    config enables batching.
    """

    def __init__(self, config: CacheConfig):
        super().__init__(config)
        self._memo: dict[tuple[bytes, int, int], CacheModelResult] = {}
        #: Memo telemetry (read by benchmarks and tests).
        self.memo_hits = 0
        self.memo_misses = 0

    def simulate(self, stream: AccessStream, *, iterations: int = 1) -> CacheModelResult:
        """Memo-served :meth:`AnalyticCache.simulate` — identical result,
        keyed by (relative-content digest, frame offset, iterations)."""
        if not stream.subpages.size:
            return super().simulate(stream, iterations=iterations)
        digest, first = stream_fingerprint(stream)
        key = (digest, first % self.alloc_subpages, iterations)
        result = self._memo.get(key)
        if result is not None:
            self.memo_hits += 1
            return result
        result = super().simulate(stream, iterations=iterations)
        self._memo[key] = result
        self.memo_misses += 1
        return result


def shift_stream(stream: AccessStream, delta_bytes: int) -> AccessStream | None:
    """The stream translated ``delta_bytes`` up the address space.

    Exact for subpage-aligned deltas: every stream builder maps word
    addresses to subpage ids by integer division, so shifting the base
    by ``k * SUBPAGE_BYTES`` shifts every id by exactly ``k`` — run
    boundaries, weights and write fraction are untouched.  Returns
    ``None`` for unaligned deltas (the caller falls back to direct
    construction) and for negative results (ids must stay >= 0).
    """
    if delta_bytes % SUBPAGE_BYTES:
        return None
    delta_subpages = delta_bytes // SUBPAGE_BYTES
    if delta_subpages == 0:
        return stream
    if not stream.subpages.size:
        return stream
    ids = stream.subpages + np.int64(delta_subpages)
    if delta_subpages < 0 and int(ids.min()) < 0:
        return None
    return AccessStream(ids, stream.weights, stream.write_fraction)
