"""repro — reproduction of "Scalability Study of the KSR-1" (ICPP 1993).

The Kendall Square Research KSR-1 was a cache-only memory architecture
(COMA) multiprocessor built around a slotted, pipelined, unidirectional
ring.  The machine is long extinct, so this package re-creates it as a
deterministic discrete-event model and then re-runs the paper's entire
experiment suite on that model:

* low-level read/write latency measurements for the three levels of the
  memory hierarchy (sub-cache / local-cache / ring),
* lock and barrier synchronization algorithms (nine barrier variants,
  hardware exclusive locks and software FCFS read-write ticket locks),
* the NAS parallel benchmark kernels EP, CG and IS plus the SP
  application, together with the scalability metrics (speedup,
  efficiency, Karp-Flatt serial fraction) the paper reports.

Quickstart
----------
>>> from repro import MachineConfig, KsrMachine
>>> machine = KsrMachine(MachineConfig.ksr1(n_cells=8))
>>> # see examples/quickstart.py for a complete runnable tour

Package layout
--------------
``repro.sim``
    Discrete-event simulation kernel (engine, coroutine processes).
``repro.ring``
    The slotted pipelined ring, the ARD inter-ring router, the two
    level ring hierarchy and the analytical contention model.
``repro.memory``
    ALLCACHE memory system: address spaces, sub-cache, local-cache,
    access streams, the vectorized reuse-distance cache model and the
    hardware performance monitor.
``repro.coherence``
    Invalidation-based sequentially-consistent coherence protocol with
    the KSR subpage states (invalid / shared / exclusive / atomic),
    read-snarfing, ``get_subpage`` / ``release_subpage`` and the
    ``prefetch`` / ``poststore`` instructions.
``repro.machine``
    Machine assembly: cells, threads, machine configurations and the
    shared-memory programming API that workloads are written against.
``repro.sync``
    Lock and barrier algorithm library (the paper's section 3.2).
``repro.kernels``
    From-scratch NAS kernels: EP, CG, IS, SP (the paper's section 3.3).
``repro.metrics``
    Scalability metrics: speedup, efficiency, serial fraction.
``repro.experiments``
    One runner per paper table/figure; see DESIGN.md for the index.
"""

from repro._version import __version__
from repro.errors import (
    ReproError,
    SimulationError,
    ConfigError,
    MemoryModelError,
    ProtocolError,
    DeadlockError,
    AllocationError,
)
from repro.machine.config import MachineConfig, RingConfig, CacheConfig, LatencyConfig
from repro.machine.ksr import KsrMachine

__all__ = [
    "__version__",
    "ReproError",
    "SimulationError",
    "ConfigError",
    "MemoryModelError",
    "ProtocolError",
    "DeadlockError",
    "AllocationError",
    "MachineConfig",
    "RingConfig",
    "CacheConfig",
    "LatencyConfig",
    "KsrMachine",
]
