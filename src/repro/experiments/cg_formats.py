"""The CG data-structure story: why the authors transformed the matrix.

Section 3.3.1: the original NASA code stored A in "column start, row
index" (CSC) form.  Parallelizing *that* by columns makes multiple
processors scatter into the same ``y`` elements, "necessitating
synchronization for every access of y"; the row-major transform (CSR)
gives each processor sole ownership of its ``y`` block and needs no
synchronization at all.  The paper asserts this qualitatively; this
experiment quantifies it on the simulated machine.

Modelling the CSC variant: the matvec work is identical, but

* every ``y`` update is a read-modify-write on a *shared* element —
  under column partitioning a given ``y`` subpage is written by many
  processors, so each update is priced as a coherence transfer with
  probability ``(P-1)/P`` (the chance the subpage's last writer was
  someone else), plus the lock/unlock cost the paper's
  "synchronization for every access" implies (a get_subpage round on
  the element's subpage);
* the gather locality flips: CSC streams ``x[j]`` (one scalar per
  column — excellent locality) but scatters into ``y`` through
  ``row_index`` (the data-dependent pattern).

The CSR numbers come from the production CG kernel so the comparison
is apples-to-apples.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.kernels.cg import CgKernel
from repro.kernels.costmodel import PhaseWork
from repro.machine.config import MachineConfig, SUBPAGE_BYTES, WORD_BYTES
from repro.memory.streams import concat, gather, sequential

__all__ = ["run_format_comparison"]

_A_BASE = 0x0000_0000
_ROWIDX_BASE = 0x4000_0000
_COL_BASE = 0x8000_0000
_X_BASE = 0x9000_0000
_Y_BASE = 0xA000_0000


def _csc_matvec_work(kernel: CgKernel, pid: int, n_procs: int) -> PhaseWork:
    """One processor's share of the *column-partitioned* CSC matvec."""
    csc = kernel.matrix.to_csc()
    # column block for this processor
    base = csc.n // n_procs
    extra = csc.n % n_procs
    lo = pid * base + min(pid, extra)
    hi = lo + base + (1 if pid < extra else 0)
    k_lo, k_hi = int(csc.col_start[lo]), int(csc.col_start[hi])
    nnz_p = k_hi - k_lo
    stream = concat(
        [
            sequential(_COL_BASE + lo * WORD_BYTES, hi - lo + 1),
            sequential(_ROWIDX_BASE + k_lo * WORD_BYTES, nnz_p),
            sequential(_A_BASE + k_lo * WORD_BYTES, nnz_p),
            sequential(_X_BASE + lo * WORD_BYTES, hi - lo),
            # the scatter: read-modify-write of y through row_index
            gather(_Y_BASE, csc.row_index[k_lo:k_hi], write_fraction=0.5),
        ]
    )
    n = kernel.n
    y_subpages = n * WORD_BYTES / SUBPAGE_BYTES
    words_per_subpage = SUBPAGE_BYTES // WORD_BYTES
    if n_procs > 1:
        # every y subpage this processor touches was most likely last
        # written by another processor: coherence transfer per touch
        touches = nnz_p / words_per_subpage
        shared_fraction = (n_procs - 1) / n_procs
        remote = min(touches, y_subpages) + touches * shared_fraction * 0.5
        # "synchronization for every access of y": a lock round per
        # update, costed as one ring transaction each
        sync_transfers = nnz_p * shared_fraction
    else:
        remote = 0.0
        sync_transfers = 0.0
    return PhaseWork(
        name=f"cg-csc-matvec-p{pid}",
        n_active=n_procs,
        flops=2.0 * nnz_p,
        int_ops=3.0 * nnz_p,  # extra indexing for the scatter
        stream=stream,
        remote_subpages=remote + sync_transfers,
        prefetch_overlap=0.3,
    )


def run_format_comparison(
    proc_counts: list[int] | None = None,
    *,
    full_size: bool = False,
    seed: int = 111,
) -> ExperimentResult:
    """CSR (transformed) vs CSC (original) parallel matvec time."""
    if proc_counts is None:
        proc_counts = [1, 4, 16, 32]
    config = MachineConfig.ksr1(32, seed=seed)
    kernel = (
        CgKernel.paper_size(config)
        if full_size
        else CgKernel(config, n=1400, nnz_target=203_000)
    )
    result = ExperimentResult(
        experiment_id="CG-FMT",
        title="CG matvec: row-major (CSR) vs original column-major (CSC)",
        headers=["P", "CSR (ms/matvec)", "CSC (ms/matvec)", "CSC penalty"],
    )
    for p in proc_counts:
        csr_cost = kernel.cost_model.parallel_time(
            [kernel._matvec_work(pid, p, False) for pid in range(p)]
        )
        csc_cost = kernel.cost_model.parallel_time(
            [_csc_matvec_work(kernel, pid, p) for pid in range(p)]
        )
        csr_ms = config.seconds(csr_cost.total_cycles) * 1e3
        csc_ms = config.seconds(csc_cost.total_cycles) * 1e3
        result.add_row([p, csr_ms, csc_ms, csc_ms / csr_ms])
        result.add_series_point("csr", p, csr_ms)
        result.add_series_point("csc", p, csc_ms)
    penalties = result.column("CSC penalty")
    result.notes.append(
        f"the original format's per-update synchronization costs "
        f"{penalties[-1]:.0f}x at the full ring — the quantitative case "
        "for the paper's data-structure transformation"
    )
    return result
