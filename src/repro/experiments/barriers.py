"""Figures 4 and 5: barrier performance on the KSR-1 and KSR-2.

Each (algorithm, P) point runs a fresh machine with P bound threads
executing ``reps`` back-to-back barrier episodes separated by a small
local delay; the reported time is the mean episode duration (earliest
entry to latest exit), discarding the first episode (cold caches).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.experiments.base import ExperimentResult
from repro.experiments.sweep import SweepRunner
from repro.machine.api import SharedMemory
from repro.machine.config import MachineConfig, TimerConfig
from repro.machine.ksr import KsrMachine
from repro.obs import Observer, ObsCapture, ObsSpec, trace_sink
from repro.sim.process import LocalOps
from repro.sync.barriers import make_barrier

__all__ = [
    "measure_barrier",
    "figure4_point",
    "figure5_point",
    "run_figure4",
    "run_figure5",
    "DEFAULT_ALGORITHMS",
]

DEFAULT_ALGORITHMS = [
    "system",
    "counter",
    "tree",
    "tree(M)",
    "dissemination",
    "tournament",
    "tournament(M)",
    "mcs",
    "mcs(M)",
]

#: Local operations between consecutive barrier episodes.
_INTER_EPISODE_OPS = 50


def measure_barrier(
    name: str,
    n_procs: int,
    *,
    machine_config: MachineConfig | None = None,
    reps: int = 10,
    seed: int = 404,
    use_poststore: bool = True,
    obs: ObsSpec | None = None,
) -> float | tuple[float, ObsCapture]:
    """Mean seconds per barrier episode for one (algorithm, P) point.

    With ``obs`` set, an :class:`~repro.obs.Observer` rides along (the
    probes are read-only, so the timing is unchanged) and the return
    value becomes ``(seconds, capture)``.
    """
    if n_procs < 2:
        raise ConfigError("a barrier measurement needs at least 2 processors")
    if machine_config is None:
        machine_config = MachineConfig.ksr1(
            n_cells=n_procs, seed=seed, timer=TimerConfig(enabled=False)
        )
    if machine_config.n_cells < n_procs:
        raise ConfigError("machine too small for the requested P")
    machine = KsrMachine(machine_config)
    observer = Observer(obs).attach(machine) if obs is not None else None
    mem = SharedMemory(machine)
    barrier = make_barrier(name, mem, n_procs, use_poststore=use_poststore)
    marks: dict[int, list[float]] = {i: [] for i in range(n_procs)}

    def body(pid: int):
        for episode in range(reps):
            yield LocalOps(_INTER_EPISODE_OPS)
            yield from barrier.wait(pid, episode)
            marks[pid].append(machine.engine.now)

    for i in range(n_procs):
        machine.spawn(f"bar-{i}", body(i), i)
    machine.run()
    episode_ends = [max(marks[i][e] for i in range(n_procs)) for e in range(reps)]
    episode_starts = [
        min(marks[i][e - 1] for i in range(n_procs)) for e in range(1, reps)
    ]
    durations = [
        end - start for start, end in zip(episode_starts, episode_ends[1:])
    ]
    seconds = machine.config.seconds(float(np.mean(durations)))
    if observer is not None:
        capture = observer.capture(
            f"{name} barrier P={n_procs}",
            name=name, n_procs=n_procs, reps=reps, seed=seed,
            n_cells=machine_config.n_cells,
        )
        observer.detach()
        return seconds, capture
    return seconds


def figure4_point(
    name: str, n_procs: int, reps: int, seed: int, obs: ObsSpec | None = None
) -> float | tuple[float, ObsCapture]:
    """One (algorithm, P) point of Figure 4 on a P-cell KSR-1.

    Module-level (and scalar-argued) so a :class:`SweepRunner` can ship
    it to worker processes and cache it by value.
    """
    config = MachineConfig.ksr1(n_cells=n_procs, seed=seed, timer=TimerConfig(enabled=False))
    return measure_barrier(
        name, n_procs, machine_config=config, reps=reps, seed=seed, obs=obs
    )


def figure5_point(
    name: str, n_procs: int, reps: int, seed: int, obs: ObsSpec | None = None
) -> float | tuple[float, ObsCapture]:
    """One (algorithm, P) point of Figure 5 on a two-ring KSR-2."""
    config = MachineConfig.ksr2(
        n_cells=max(n_procs, 33), seed=seed, timer=TimerConfig(enabled=False)
    )
    return measure_barrier(
        name, n_procs, machine_config=config, reps=reps, seed=seed, obs=obs
    )


def _run_sweep(
    experiment_id: str,
    title: str,
    proc_counts: list[int],
    point_func: "callable",
    algorithms: list[str],
    reps: int,
    seed: int,
    runner: SweepRunner | None,
    obs: ObsSpec | None = None,
    trace_dir: str | None = None,
) -> ExperimentResult:
    if runner is None:
        runner = SweepRunner()
    if trace_dir is not None and obs is None:
        obs = ObsSpec()
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        headers=["P"] + algorithms,
    )
    calls = [
        dict(name=name, n_procs=p, reps=reps, seed=seed)
        for p in proc_counts
        for name in algorithms
    ]
    if obs is not None:
        for call in calls:
            call["obs"] = obs
    sink = trace_sink(experiment_id, trace_dir) if trace_dir is not None else None
    raw = runner.map(point_func, calls, on_result=sink)
    values = iter(r[0] if obs is not None else r for r in raw)
    for p in proc_counts:
        row: list = [p]
        for name in algorithms:
            t = next(values)
            row.append(t * 1e6)  # microseconds, like the figures' axis scale
            result.add_series_point(name, p, t)
        result.add_row(row)
    return result


def run_figure4(
    proc_counts: list[int] | None = None,
    *,
    algorithms: list[str] | None = None,
    reps: int = 10,
    seed: int = 404,
    runner: SweepRunner | None = None,
    obs: ObsSpec | None = None,
    trace_dir: str | None = None,
) -> ExperimentResult:
    """Figure 4: the nine barriers on a 32-node KSR-1 (microseconds)."""
    if proc_counts is None:
        proc_counts = [2, 4, 8, 16, 24, 32]
    if algorithms is None:
        algorithms = DEFAULT_ALGORITHMS
    result = _run_sweep(
        "FIG4",
        "Barrier performance on the 32-node KSR-1 (us per episode)",
        proc_counts,
        figure4_point,
        algorithms,
        reps,
        seed,
        runner,
        obs=obs,
        trace_dir=trace_dir,
    )
    _order_notes(result)
    return result


def run_figure5(
    proc_counts: list[int] | None = None,
    *,
    algorithms: list[str] | None = None,
    reps: int = 10,
    seed: int = 404,
    runner: SweepRunner | None = None,
    obs: ObsSpec | None = None,
    trace_dir: str | None = None,
) -> ExperimentResult:
    """Figure 5: the nine barriers on a 64-node, two-ring KSR-2."""
    if proc_counts is None:
        proc_counts = [16, 24, 32, 40, 48, 56, 64]
    if algorithms is None:
        algorithms = DEFAULT_ALGORITHMS
    result = _run_sweep(
        "FIG5",
        "Barrier performance on the 64-node KSR-2 (us per episode)",
        proc_counts,
        figure5_point,
        algorithms,
        reps,
        seed,
        runner,
        obs=obs,
        trace_dir=trace_dir,
    )
    _order_notes(result)
    crossing = [p for p in result.column("P") if p > 32]
    if crossing and 32 in result.column("P"):
        result.notes.append(
            "points beyond P=32 span two leaf rings: the level-1 ring "
            "crossing produces the paper's 'sudden jump'"
        )
    return result


def _order_notes(result: ExperimentResult) -> None:
    """Summarize the orderings the paper highlights."""
    last = result.rows[-1]
    by_name = dict(zip(result.headers[1:], last[1:]))
    ranked = sorted(by_name, key=by_name.get)
    result.notes.append(
        f"at P={last[0]}: fastest -> slowest: {', '.join(ranked)}"
    )
    if by_name.get("counter") == max(by_name.values()):
        result.notes.append("counter (hot spot) is the slowest, as in the paper")
