"""Section 3.2.3: barriers on the Sequent Symmetry and BBN Butterfly.

The paper contrasts its KSR-1 results with Mellor-Crummey & Scott's
measurements on two machines whose *structural* properties differ:

* **Sequent Symmetry** — bus-based, snooping coherent caches: every
  communication step serializes on the bus, so total message count
  (plus per-round software overhead) decides; broadcast is free-riding
  (all snoopers observe one bus transaction).
* **BBN Butterfly** — multistage network with parallel paths but *no*
  coherent caches: waiting means polling across the network, there is
  no broadcast, and the critical path (rounds x network latency, with
  k-ary gathers costing k sequential polls) decides.

These are closed-form structural models — counting serialized bus
transactions and critical-path network steps per algorithm — not
discrete-event simulations: the point of this section is orderings,
which follow from the structure the paper describes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.experiments.base import ExperimentResult

__all__ = [
    "ArchitectureModel",
    "SYMMETRY",
    "BUTTERFLY",
    "barrier_cost",
    "run_other_archs",
]


@dataclass(frozen=True)
class ArchitectureModel:
    """Structural parameters of a comparison architecture."""

    name: str
    #: Communication steps in one round proceed concurrently?
    parallel_paths: bool
    #: Can one transaction update every waiter (snooping/snarfing)?
    broadcast: bool
    #: Cost of one remote communication (arbitrary time units).
    message_cost: float
    #: Software overhead per algorithm round.
    round_overhead: float


SYMMETRY = ArchitectureModel(
    name="Sequent Symmetry",
    parallel_paths=False,
    broadcast=True,
    message_cost=1.0,
    round_overhead=0.4,
)

BUTTERFLY = ArchitectureModel(
    name="BBN Butterfly",
    parallel_paths=True,
    broadcast=False,
    message_cost=1.0,
    round_overhead=0.4,
)


def _log2(n: int) -> int:
    return max(1, math.ceil(math.log2(n)))


def barrier_cost(algorithm: str, arch: ArchitectureModel, n_procs: int) -> float:
    """Structural cost of one barrier episode (arbitrary units).

    For a serializing architecture the cost is total messages x message
    cost + rounds x overhead; for parallel paths it is the critical
    path: per-round steps (k sequential polls for a k-ary gather) x
    message cost + rounds x overhead.  The global-wakeup (M) variants
    need ``arch.broadcast``; on the Butterfly they degrade to their
    tree-wakeup forms (no coherent caches to snarf a flag), which is
    why the paper never considers them there.
    """
    if n_procs < 2:
        raise ConfigError("need at least 2 processors")
    p = n_procs
    logp = _log2(p)
    log4p = max(1, math.ceil(math.log(p, 4)))
    m, r = arch.message_cost, arch.round_overhead

    def serialized(messages: float, rounds: float) -> float:
        return messages * m + rounds * r

    def critical_path(steps: float, rounds: float) -> float:
        return steps * m + rounds * r

    if algorithm == "counter":
        # With snooping caches an arrival is ONE cheap atomic bus
        # transaction and the completing decrement is snooped by every
        # spinner for free — this is why the counter wins on the
        # Symmetry.  Without caches the counter is a polled hot spot.
        if arch.broadcast:
            return serialized(p + 1.0, 0.0)
        if arch.parallel_paths:
            return critical_path(2.0 * p, 0.0)  # serialized hot spot
        return serialized(3.0 * p, 0.0)
    if algorithm == "dissemination":
        if arch.parallel_paths:
            return critical_path(logp, logp)
        return serialized(p * logp, logp)
    if algorithm in ("tournament", "tournament(M)"):
        wake_bcast = algorithm.endswith("(M)") and arch.broadcast
        arrival_steps = logp  # one message per round on the path
        wake_steps = 1.0 if wake_bcast else logp
        if arch.parallel_paths:
            return critical_path(arrival_steps + wake_steps, logp + (0 if wake_bcast else logp))
        messages = p + (1.0 if wake_bcast else p)
        return serialized(messages, logp + (0 if wake_bcast else logp))
    if algorithm in ("mcs", "mcs(M)"):
        wake_bcast = algorithm.endswith("(M)") and arch.broadcast
        arrival_steps = 4.0 * log4p  # 4 sequential child gathers per level
        wake_steps = 1.0 if wake_bcast else logp
        if arch.parallel_paths:
            return critical_path(
                arrival_steps + wake_steps, log4p + (0 if wake_bcast else logp)
            )
        messages = p + (1.0 if wake_bcast else p)
        return serialized(messages, log4p + (0 if wake_bcast else logp))
    if algorithm in ("tree", "tree(M)"):
        wake_bcast = algorithm.endswith("(M)") and arch.broadcast
        # dynamic combining tree: lock + increment per node on the path
        arrival_steps = 2.0 * logp
        wake_steps = 1.0 if wake_bcast else logp
        if arch.parallel_paths:
            return critical_path(
                arrival_steps + wake_steps, logp + (0 if wake_bcast else logp)
            )
        messages = 2.0 * p + (1.0 if wake_bcast else p)
        return serialized(messages, logp + (0 if wake_bcast else logp))
    raise ConfigError(f"unknown algorithm {algorithm!r}")


def run_other_archs(n_procs: int = 32) -> ExperimentResult:
    """Reproduce the section's comparative orderings."""
    algorithms = [
        "counter",
        "dissemination",
        "tree",
        "tree(M)",
        "tournament",
        "tournament(M)",
        "mcs",
        "mcs(M)",
    ]
    result = ExperimentResult(
        experiment_id="S3.2.3",
        title=f"Structural barrier costs on other architectures (P={n_procs})",
        headers=["algorithm", "Symmetry (bus)", "Butterfly (no caches)"],
    )
    for alg in algorithms:
        result.add_row(
            [
                alg,
                barrier_cost(alg, SYMMETRY, n_procs),
                barrier_cost(alg, BUTTERFLY, n_procs),
            ]
        )
    sym = {a: barrier_cost(a, SYMMETRY, n_procs) for a in algorithms}
    but = {a: barrier_cost(a, BUTTERFLY, n_procs) for a in algorithms}
    result.notes.append(
        f"Symmetry fastest: {min(sym, key=sym.get)} (paper: the counter)"
    )
    # the (M) variants need coherent caches; exclude on the Butterfly
    but_plain = {a: v for a, v in but.items() if not a.endswith("(M)")}
    ranked = sorted(but_plain, key=but_plain.get)
    result.notes.append(
        f"Butterfly order: {', '.join(ranked)} "
        "(paper: dissemination, then tournament, then MCS)"
    )
    return result
