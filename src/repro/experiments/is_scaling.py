"""Table 2 and the IS curve of Figure 8."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.kernels.is_sort import IsKernel
from repro.machine.config import MachineConfig
from repro.metrics.speedup import ScalingTable

__all__ = ["run_table2", "make_is"]


def make_is(*, full_size: bool = False, seed: int = 707) -> IsKernel:
    """Build the IS kernel at test scale or the paper's 2^23 keys."""
    config = MachineConfig.ksr1(n_cells=32, seed=seed)
    if full_size:
        return IsKernel.paper_size(config)
    return IsKernel(config)


def run_table2(
    proc_counts: list[int] | None = None,
    *,
    full_size: bool = False,
    seed: int = 707,
) -> ExperimentResult:
    """Reproduce Table 2 (IS scaling) and the Figure 8 IS curve."""
    if proc_counts is None:
        proc_counts = [1, 2, 4, 8, 16, 30, 32]
    kernel = make_is(full_size=full_size, seed=seed)
    # verify the numerics once per experiment
    kernel.verify(kernel.rank_keys())
    size_note = (
        f"{kernel.n_keys} keys, {kernel.n_buckets} buckets"
        + ("" if full_size else " (test scale; --full for the paper's size)")
    )
    result = ExperimentResult(
        experiment_id="TAB2",
        title=f"Integer Sort, {size_note}",
        headers=["Processors", "Time (s)", "Speedup", "Efficiency", "Serial Fraction"],
    )
    table = ScalingTable()
    runs = {}
    for p in proc_counts:
        run = kernel.run(p)
        runs[p] = run
        table.add(p, run.time_s)
    for point in table.points():
        result.add_row(point.row())
        result.add_series_point("IS speedup", point.processors, point.speedup)
    points = table.points()
    fractions = [pt.serial_fraction for pt in points if pt.serial_fraction is not None]
    if len(fractions) >= 2 and fractions[-1] > fractions[0]:
        result.notes.append(
            "serial fraction rises with P (phases 4 and 6 of the "
            "algorithm), as in the paper"
        )
    saturated = [p for p, run in runs.items() if run.saturated_phases]
    if saturated:
        result.notes.append(
            f"ring-saturated phases appear at P={min(saturated)} "
            "(paper: saturation effects at the fully populated ring)"
        )
    return result
