"""Experiment runners: one per table/figure of the paper.

==============  ============================================
Module          Paper artifact
==============  ============================================
``latency``     Figure 2 + the block/page allocation overhead
                measurements of section 3.1
``locks``       Figure 3 (exclusive vs read-write locks)
``barriers``    Figure 4 (32-node KSR-1) and Figure 5
                (64-node KSR-2)
``other_archs`` Section 3.2.3 (Sequent Symmetry / BBN
                Butterfly comparison)
``ep_scaling``  EP results of section 3.3 (linear speedup,
                ~11 MFLOPS per cell)
``cg_scaling``  Table 1 + the CG curve of Figure 8
``is_scaling``  Table 2 + the IS curve of Figure 8
``sp_scaling``  Tables 3 and 4
==============  ============================================

Every runner returns an :class:`~repro.experiments.base.ExperimentResult`
whose rows mirror the paper's layout; ``repro.experiments.cli`` renders
them from the ``ksr-experiments`` entry point.
"""

from repro.experiments.base import ExperimentResult, PAPER_ANCHORS

__all__ = ["ExperimentResult", "PAPER_ANCHORS"]
