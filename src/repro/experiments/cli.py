"""Command-line front end: ``ksr-experiments``.

Runs any subset of the paper's experiments and prints their tables.

Examples::

    ksr-experiments --list
    ksr-experiments fig4 tab1
    ksr-experiments all --quick
    ksr-experiments all --quick --jobs 8   # fan sweep points across processes
    ksr-experiments tab1 tab2 --full       # paper-size problems
    ksr-experiments all --no-cache         # ignore .ksr-cache/ results

Parallel runs are deterministic: every sweep point re-derives its RNG
streams from its own arguments, so ``--jobs N`` output is byte-identical
to the serial run.  Results are memoised under ``.ksr-cache/`` (keyed by
code version + arguments), making re-runs of unchanged points instant.
"""

from __future__ import annotations

import sys
import time
from typing import Callable

from repro.experiments.base import ExperimentResult
from repro.util.cli import (
    build_parser,
    install_sigpipe_handler,
    print_unknown,
    resolve_selection,
    write_report,
)

__all__ = ["main", "EXPERIMENTS"]


def _fig2(args) -> ExperimentResult:
    from repro.experiments.latency import run_figure2

    procs = [1, 2, 8, 32] if args.quick else [1, 2, 4, 8, 16, 24, 32]
    return run_figure2(
        proc_counts=procs,
        samples=400 if args.quick else 1000,
        runner=args.runner,
        trace_dir=args.trace_dir,
    )


def _fig3(args) -> ExperimentResult:
    from repro.experiments.locks import run_figure3

    procs = [2, 8, 32] if args.quick else [2, 4, 8, 16, 24, 32]
    return run_figure3(
        proc_counts=procs,
        ops=30 if args.quick else (500 if args.full else 100),
        runner=args.runner,
        trace_dir=args.trace_dir,
    )


def _fig4(args) -> ExperimentResult:
    from repro.experiments.barriers import run_figure4

    procs = [4, 16, 32] if args.quick else [2, 4, 8, 16, 24, 32]
    return run_figure4(
        proc_counts=procs,
        reps=6 if args.quick else 10,
        runner=args.runner,
        trace_dir=args.trace_dir,
    )


def _fig5(args) -> ExperimentResult:
    from repro.experiments.barriers import run_figure5

    procs = [16, 32, 48, 64] if args.quick else [16, 24, 32, 40, 48, 56, 64]
    return run_figure5(
        proc_counts=procs,
        reps=6 if args.quick else 10,
        runner=args.runner,
        trace_dir=args.trace_dir,
    )


def _other(args) -> ExperimentResult:
    from repro.experiments.other_archs import run_other_archs

    return args.runner.run(run_other_archs)


def _ep(args) -> ExperimentResult:
    from repro.experiments.ep_scaling import run_ep_scaling

    return args.runner.run(run_ep_scaling, n_pairs=(1 << 16) if args.quick else (1 << 18))


def _tab1(args) -> ExperimentResult:
    from repro.experiments.cg_scaling import run_table1

    return args.runner.run(run_table1, full_size=args.full)


def _cg_ps(args) -> ExperimentResult:
    from repro.experiments.cg_scaling import run_cg_poststore

    return args.runner.run(run_cg_poststore, full_size=args.full)


def _tab2(args) -> ExperimentResult:
    from repro.experiments.is_scaling import run_table2

    return args.runner.run(run_table2, full_size=args.full)


def _tab3(args) -> ExperimentResult:
    from repro.experiments.sp_scaling import run_table3

    return args.runner.run(run_table3, full_size=args.full)


def _tab4(args) -> ExperimentResult:
    from repro.experiments.sp_scaling import run_table4

    return args.runner.run(run_table4, full_size=args.full)


def _sp_ps(args) -> ExperimentResult:
    from repro.experiments.sp_scaling import run_sp_poststore

    return args.runner.run(run_sp_poststore, full_size=args.full)


def _cg_fmt(args) -> ExperimentResult:
    from repro.experiments.cg_formats import run_format_comparison

    return args.runner.run(run_format_comparison, full_size=args.full)


def _fig8(args) -> ExperimentResult:
    from repro.experiments.figure8 import run_figure8

    return args.runner.run(run_figure8, full_size=args.full)


def _future(args) -> ExperimentResult:
    from repro.experiments.future_features import run_future_features

    return args.runner.run(run_future_features, full_size=args.full)


def _proj_bar(args) -> ExperimentResult:
    from repro.experiments.projection import run_barrier_projection

    procs = [32, 64, 128] if args.quick else [32, 64, 128, 256]
    return args.runner.run(run_barrier_projection, proc_counts=procs)


def _proj_cg(args) -> ExperimentResult:
    from repro.experiments.projection import run_cg_projection

    return args.runner.run(run_cg_projection)


def _f1(args) -> ExperimentResult:
    from repro.experiments.degraded import run_degraded_locks

    procs = [2, 8] if args.quick else [2, 4, 8, 16]
    return run_degraded_locks(
        proc_counts=procs, ops=10 if args.quick else 30, runner=args.runner
    )


def _f2(args) -> ExperimentResult:
    from repro.experiments.degraded import run_degraded_barriers

    procs = [4, 8] if args.quick else [4, 8, 16]
    return run_degraded_barriers(
        proc_counts=procs, reps=4 if args.quick else 6, runner=args.runner
    )


def _f3(args) -> ExperimentResult:
    from repro.experiments.degraded import run_degraded_kernels

    procs = [1, 4, 16] if args.quick else [1, 2, 4, 8, 16, 32]
    return run_degraded_kernels(proc_counts=procs, runner=args.runner)


EXPERIMENTS: dict[str, tuple[str, Callable]] = {
    "fig2": ("Figure 2: memory-hierarchy latencies", _fig2),
    "fig3": ("Figure 3: lock performance", _fig3),
    "fig4": ("Figure 4: barriers on the 32-node KSR-1", _fig4),
    "fig5": ("Figure 5: barriers on the 64-node KSR-2", _fig5),
    "other-archs": ("Section 3.2.3: Symmetry/Butterfly comparison", _other),
    "ep": ("EP scaling (section 3.3)", _ep),
    "tab1": ("Table 1: CG scaling", _tab1),
    "cg-poststore": ("CG poststore study (section 3.3.1)", _cg_ps),
    "tab2": ("Table 2: IS scaling", _tab2),
    "fig8": ("Figure 8: CG and IS speedup curves", _fig8),
    "tab3": ("Table 3: SP scaling", _tab3),
    "tab4": ("Table 4: SP optimization ladder", _tab4),
    "sp-poststore": ("SP poststore study (section 3.3.3)", _sp_ps),
    "cg-formats": ("CG data-structure study: CSR vs original CSC", _cg_fmt),
    "future": ("Section 4's proposed features, implemented", _future),
    "proj-barriers": ("Projection: barriers beyond 64 processors", _proj_bar),
    "proj-cg": ("Projection: CG to the 1088-processor maximum", _proj_cg),
    "f1": ("Degraded mode: lock workload under fault injection", _f1),
    "f2": ("Degraded mode: barriers under fault injection", _f2),
    "f3": ("Degraded mode: EP/CG scaling under fault injection", _f3),
}


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``ksr-experiments``."""
    install_sigpipe_handler()
    parser = build_parser(
        "ksr-experiments",
        "Reproduce the tables and figures of 'Scalability "
        "Study of the KSR-1' on the simulated machine.",
        positional="experiments",
        positional_help="experiment ids (see --list), or 'all'",
    )
    parser.add_argument(
        "--quick", action="store_true", help="smaller sweeps for a fast look"
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-size problems (slower; affects fig3/tab1/tab2/tab3/tab4)",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="render each experiment's series as an ASCII figure too",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="fan independent sweep points across N worker processes "
        "(output is byte-identical to the serial run)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every point instead of reusing .ksr-cache/ "
        "(set KSR_CACHE_DIR to relocate the cache)",
    )
    parser.add_argument(
        "--trace-dir",
        metavar="DIR",
        default=None,
        help="write one Chrome-trace JSON per sweep point into DIR "
        "(fig2/fig3/fig4/fig5; view with about:tracing or Perfetto)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="report the resolved cache location and hit/miss/corrupt "
        "counts after the run",
    )
    args = parser.parse_args(argv)
    from repro.experiments.sweep import ResultCache, SweepRunner

    args.runner = SweepRunner(
        jobs=args.jobs, cache=None if args.no_cache else ResultCache.default()
    )
    if args.list or not args.experiments:
        for key, (title, _) in EXPERIMENTS.items():
            print(f"{key:14s} {title}")
        return 0
    wanted, unknown = resolve_selection(args.experiments, EXPERIMENTS)
    if unknown:
        return print_unknown(unknown, "experiment")
    sections: list[str] = []
    for key in wanted:
        title, runner = EXPERIMENTS[key]
        start = time.time()
        result = runner(args)
        elapsed = time.time() - start
        rendered = result.render()
        if args.chart and result.series:
            from repro.util.charts import ascii_chart

            rendered += "\n\n" + ascii_chart(
                result.series,
                title=f"{result.experiment_id} (series view)",
                x_label="P",
                y_label="value",
            )
        print(rendered)
        print(f"  [{key} completed in {elapsed:.1f}s]")
        print()
        sections.append(f"```\n{rendered}\n```\n_completed in {elapsed:.1f}s_\n")
    if args.verbose and args.runner.cache is not None:
        from repro.util.cli import format_cache_stats

        print(format_cache_stats(args.runner.cache.stats()))
    if args.output:
        write_report(args.output, "ksr-experiments report", sections)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
