"""Table 1 and the CG curve of Figure 8, plus the poststore study.

``run_table1`` reproduces the paper's table layout (processors / time /
speedup / efficiency / serial fraction); ``run_cg_poststore`` the
in-text poststore experiment ("Using poststore improves the performance
(3% for 16 processors), but the improvement is higher for lower number
of processors" and vanishes near ring saturation).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.kernels.cg import CgKernel
from repro.machine.config import MachineConfig
from repro.metrics.speedup import ScalingTable

__all__ = ["run_table1", "run_cg_poststore", "make_cg"]


def make_cg(*, full_size: bool = False, seed: int = 606) -> CgKernel:
    """Build the CG kernel at test scale or the paper's full size."""
    config = MachineConfig.ksr1(n_cells=32, seed=seed)
    if full_size:
        return CgKernel.paper_size(config)
    return CgKernel(config)


def run_table1(
    proc_counts: list[int] | None = None,
    *,
    full_size: bool = False,
    seed: int = 606,
) -> ExperimentResult:
    """Reproduce Table 1 (CG scaling) and the Figure 8 CG curve."""
    if proc_counts is None:
        proc_counts = [1, 2, 4, 8, 16, 32]
    kernel = make_cg(full_size=full_size, seed=seed)
    size_note = (
        f"n={kernel.n}, nnz={kernel.matrix.nnz}"
        + ("" if full_size else " (test scale; --full for the paper's size)")
    )
    result = ExperimentResult(
        experiment_id="TAB1",
        title=f"Conjugate Gradient, {size_note}",
        headers=["Processors", "Time (s)", "Speedup", "Efficiency", "Serial Fraction"],
    )
    table = ScalingTable()
    for p in proc_counts:
        table.add(p, kernel.run(p).time_s)
    for point in table.points():
        result.add_row(point.row())
        result.add_series_point("CG speedup", point.processors, point.speedup)
    steps = table.superunitary_steps()
    if steps:
        result.notes.append(
            f"superunitary speedup steps (cache relief): {steps} "
            "(paper: between 4 and 16 processors)"
        )
    result.notes.append(
        "speedup drop at 32 comes from the serial section's remote "
        "references (paper's explanation, section 3.3.1)"
    )
    return result


def run_cg_poststore(
    proc_counts: list[int] | None = None,
    *,
    full_size: bool = False,
    seed: int = 606,
) -> ExperimentResult:
    """The poststore-propagation variant vs the plain implementation."""
    if proc_counts is None:
        proc_counts = [4, 8, 16, 32]
    kernel = make_cg(full_size=full_size, seed=seed)
    result = ExperimentResult(
        experiment_id="CG-PS",
        title="CG with poststore propagation of the parallel results",
        headers=["P", "plain (s)", "poststore (s)", "gain %"],
    )
    for p in proc_counts:
        plain = kernel.run(p).time_s
        with_ps = kernel.run(p, use_poststore=True).time_s
        gain = (plain - with_ps) / plain * 100.0
        result.add_row([p, plain, with_ps, gain])
        result.add_series_point("poststore gain", p, gain)
    gains = [row[3] for row in result.rows]
    if len(gains) >= 2 and gains[0] > gains[-1]:
        result.notes.append(
            "poststore gain shrinks as P grows — the ring nears "
            "saturation and the pushes compete with demand traffic "
            "(the paper's observation)"
        )
    return result
