"""Projection study: beyond the paper's 64 processors.

"Current implementations of the architecture support two levels of the
rings and hence up to 1088 processors" — a configuration the authors
never measured.  This experiment extends their methodology to it:

* **barriers** — the tournament(M) and counter barriers simulated
  (event level) on machines of 32..512 cells spanning up to 16 leaf
  rings, showing whether the paper's winner keeps its flat curve once
  most pairings cross the level-1 ring;
* **CG** — the phase-level model swept to 1088 processors, projecting
  where the serial section and ring saturation cap the speedup.

These are *projections of the model*, clearly beyond anything
validatable against the paper — the interesting output is the shape:
the barrier curves inherit a log-P slope with a level-crossing step at
every multiple of 32, and CG's speedup saturates long before 1088
(Amdahl through the serial vector section).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.barriers import measure_barrier
from repro.kernels.cg import CgKernel
from repro.machine.config import MachineConfig, TimerConfig

__all__ = ["run_barrier_projection", "run_cg_projection"]


def run_barrier_projection(
    proc_counts: list[int] | None = None,
    *,
    reps: int = 6,
    seed: int = 909,
) -> ExperimentResult:
    """Tournament(M) vs counter on multi-ring machines (event level)."""
    if proc_counts is None:
        proc_counts = [32, 64, 128, 256]
    result = ExperimentResult(
        experiment_id="PROJ-BAR",
        title="Barrier projection beyond the measured machines (KSR-1, us)",
        headers=["P", "leaf rings", "tournament(M)", "counter", "ratio"],
    )
    for p in proc_counts:
        config = MachineConfig.ksr1(
            n_cells=p, seed=seed, timer=TimerConfig(enabled=False)
        )
        tm = measure_barrier("tournament(M)", p, machine_config=config, reps=reps)
        counter = measure_barrier("counter", p, machine_config=config, reps=reps)
        result.add_row([p, config.n_rings, tm * 1e6, counter * 1e6, counter / tm])
        result.add_series_point("tournament(M)", p, tm)
        result.add_series_point("counter", p, counter)
    tm_series = dict(result.series["tournament(M)"])
    first, last = proc_counts[0], proc_counts[-1]
    result.notes.append(
        f"tournament(M) grows {tm_series[last] / tm_series[first]:.1f}x from "
        f"P={first} to P={last} while the hot-spot counter grows "
        f"{dict(result.series['counter'])[last] / dict(result.series['counter'])[first]:.1f}x"
    )
    return result


def run_cg_projection(
    proc_counts: list[int] | None = None,
    *,
    seed: int = 909,
) -> ExperimentResult:
    """CG speedup projected to the architecture's maximum (model tier)."""
    if proc_counts is None:
        proc_counts = [1, 32, 64, 128, 256, 512, 1088]
    config = MachineConfig.ksr1(n_cells=max(proc_counts), seed=seed)
    kernel = CgKernel.paper_size(config, iterations=50)
    result = ExperimentResult(
        experiment_id="PROJ-CG",
        title="CG (n=14000) projected to the 1088-processor architecture",
        headers=["P", "time (s)", "speedup", "efficiency", "serial share"],
    )
    t1 = None
    for p in proc_counts:
        run = kernel.run(p)
        if t1 is None:
            t1 = run.time_s
        speedup = t1 / run.time_s
        result.add_row(
            [
                p,
                run.time_s,
                speedup,
                speedup / p,
                run.serial_s / run.time_s,
            ]
        )
        result.add_series_point("speedup", p, speedup)
    speedups = dict(result.series["speedup"])
    best = max(speedups, key=speedups.get)
    result.notes.append(
        f"speedup peaks at ~{speedups[best]:.0f} around P={best:.0f}: the "
        "serial vector section and x-vector re-distribution cap this "
        "problem size long before 1088 processors"
    )
    result.notes.append(
        "projection only: no published measurements exist beyond 64 "
        "processors"
    )
    return result
