"""Figure 3: exclusive vs read-write lock performance (section 3.2.1).

Seven curves: the hardware exclusive lock, and the software FCFS
read-write ticket lock at read-share fractions 0 % ("writers only"),
20 %, 40 %, 60 %, 80 % and 100 % ("readers only"), each over a
processor sweep, with the paper's synthetic workload (delay 10000 local
operations, hold 3000, N operations per processor).

Timer interrupts are ON for this experiment — the unsynchronized
per-cell timer is part of the paper's explanation for the software
lock's surprising win over the hardware lock even with writers only.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.sweep import SweepRunner
from repro.machine.api import SharedMemory
from repro.machine.config import MachineConfig
from repro.machine.ksr import KsrMachine
from repro.obs import Observer, ObsCapture, ObsSpec, trace_sink
from repro.sync.locks import (
    HardwareExclusiveLock,
    LockWorkloadParams,
    TicketReadWriteLock,
    run_lock_workload,
)

__all__ = ["run_figure3", "measure_lock"]

#: The paper's per-processor operation count.  The default here is
#: smaller so the figure regenerates quickly; pass ``ops=500`` (with
#: patience) for the full workload.
_DEFAULT_OPS = 100


def measure_lock(
    kind: str,
    n_procs: int,
    read_fraction: float,
    *,
    ops: int = _DEFAULT_OPS,
    seed: int = 303,
    obs: ObsSpec | None = None,
    batching: bool = False,
) -> float | tuple[float, ObsCapture]:
    """Total seconds for one (lock kind, P, read fraction) point.

    With ``obs`` set, an :class:`~repro.obs.Observer` rides along (the
    probes are read-only, so the timing is unchanged) and the return
    value becomes ``(seconds, capture)``.  ``batching`` turns on the
    macro-event core (:mod:`repro.sim.batch`) — byte-identical results,
    faster wall clock; the equivalence tests pin the identity.
    """
    config = MachineConfig.ksr1(
        n_cells=max(2, n_procs), seed=seed, enable_batching=batching
    )
    machine = KsrMachine(config)
    observer = Observer(obs).attach(machine) if obs is not None else None
    mem = SharedMemory(machine)
    if kind == "hardware":
        lock = HardwareExclusiveLock(mem)
    elif kind == "rw":
        lock = TicketReadWriteLock(mem)
    else:
        raise ValueError(f"unknown lock kind {kind!r}")
    params = LockWorkloadParams(
        ops_per_processor=ops, read_fraction=read_fraction, seed=seed
    )
    result = run_lock_workload(machine, lock, params, n_threads=n_procs)
    if observer is not None:
        share = f" {int(read_fraction * 100)}% read" if kind == "rw" else ""
        capture = observer.capture(
            f"fig3 {kind}{share} P={n_procs}",
            kind=kind, n_procs=n_procs, read_fraction=read_fraction,
            ops=ops, seed=seed,
        )
        observer.detach()
        return result.total_seconds, capture
    return result.total_seconds


def run_figure3(
    proc_counts: list[int] | None = None,
    *,
    ops: int = _DEFAULT_OPS,
    seed: int = 303,
    runner: SweepRunner | None = None,
    obs: ObsSpec | None = None,
    trace_dir: str | None = None,
) -> ExperimentResult:
    """Reproduce Figure 3's seven curves.

    Every (lock kind, P, read fraction) point is an independent machine
    with point-local seeding, so ``runner`` may fan them across worker
    processes and/or serve them from the result cache without changing
    a single byte of the table.

    ``trace_dir`` (implies a default ``obs``) writes one Chrome-trace
    file per point into that directory without changing the table.
    """
    if proc_counts is None:
        proc_counts = [2, 4, 8, 16, 24, 32]
    if runner is None:
        runner = SweepRunner()
    if trace_dir is not None and obs is None:
        obs = ObsSpec()
    fractions = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]
    result = ExperimentResult(
        experiment_id="FIG3",
        title=f"Lock performance, {ops} operations per processor (seconds)",
        headers=["P", "exclusive"]
        + [f"rw {int(f * 100)}% read" for f in fractions],
    )
    calls: list[dict] = []
    for p in proc_counts:
        calls.append(dict(kind="hardware", n_procs=p, read_fraction=0.0, ops=ops, seed=seed))
        for f in fractions:
            calls.append(dict(kind="rw", n_procs=p, read_fraction=f, ops=ops, seed=seed))
    if obs is not None:
        for call in calls:
            call["obs"] = obs
    sink = trace_sink("FIG3", trace_dir) if trace_dir is not None else None
    raw = runner.map(measure_lock, calls, on_result=sink)
    values = iter(r[0] if obs is not None else r for r in raw)
    for p in proc_counts:
        row: list = [p]
        t_excl = next(values)
        row.append(t_excl)
        result.add_series_point("exclusive lock", p, t_excl)
        for f in fractions:
            t = next(values)
            row.append(t)
            result.add_series_point(f"rw {int(f * 100)}%", p, t)
        result.add_row(row)
    # headline observations
    last = result.rows[-1]
    p_last, excl, rw0, rw100 = last[0], last[1], last[2], last[-1]
    result.notes.append(
        f"at P={p_last}: readers-only rw lock is {excl / rw100:.1f}x faster "
        f"than the hardware exclusive lock (read combining)"
    )
    gap = (rw0 - excl) / excl
    if rw0 < excl:
        result.notes.append(
            "writers-only software lock beats the hardware lock — the "
            "paper's surprising result (queue survives timer interrupts; "
            "hardware retries burn ring bandwidth)"
        )
    else:
        result.notes.append(
            f"writers-only software lock within {gap * 100:.1f}% of the "
            "hardware lock (the paper measured a small software win it "
            "could not fully explain — see EXPERIMENTS.md)"
        )
    return result
