"""Tables 3 and 4: the SP application's scaling and optimization ladder."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.kernels.sp import SpApplication
from repro.machine.config import MachineConfig

__all__ = ["run_table3", "run_table4", "run_sp_poststore", "make_sp"]


def make_sp(*, full_size: bool = False, seed: int = 808) -> SpApplication:
    """Build SP at test scale (32^3) or the paper's 64^3."""
    config = MachineConfig.ksr1(n_cells=32, seed=seed)
    if full_size:
        return SpApplication.paper_size(config)
    return SpApplication(config)


def run_table3(
    proc_counts: list[int] | None = None,
    *,
    full_size: bool = False,
    seed: int = 808,
) -> ExperimentResult:
    """Table 3: seconds per SP iteration across processors."""
    if proc_counts is None:
        proc_counts = [1, 2, 4, 8, 16, 31]
    sp = make_sp(full_size=full_size, seed=seed)
    result = ExperimentResult(
        experiment_id="TAB3",
        title=f"Scalar Pentadiagonal, grid {sp.grid}^3"
        + ("" if full_size else " (test scale; --full for 64^3)"),
        headers=["Processors", "Time per iteration (s)", "Speedup"],
    )
    runs = sp.scaling(proc_counts)
    t1 = runs[0].time_per_iteration_s
    for run in runs:
        speedup = t1 / run.time_per_iteration_s
        result.add_row([run.n_procs, run.time_per_iteration_s, speedup])
        result.add_series_point("SP speedup", run.n_procs, speedup)
    last = result.rows[-1]
    result.notes.append(
        f"speedup {last[2]:.1f} on {last[0]} processors (paper: 27.8 on 31)"
    )
    return result


def run_table4(
    n_procs: int = 30,
    *,
    full_size: bool = False,
    seed: int = 808,
) -> ExperimentResult:
    """Table 4: the optimization ladder at 30 processors."""
    sp = make_sp(full_size=full_size, seed=seed)
    ladder = sp.optimization_ladder(n_procs)
    labels = [
        "Base version",
        "Data padding and alignment",
        "Prefetching appropriate data",
    ]
    result = ExperimentResult(
        experiment_id="TAB4",
        title=f"SP optimizations (using {n_procs} processors), grid {sp.grid}^3",
        headers=["Optimizations", "Time per iteration (s)", "vs previous"],
    )
    prev = None
    for label, run in zip(labels, ladder):
        t = run.time_per_iteration_s
        delta = "-" if prev is None else f"{(1 - t / prev) * 100:+.1f}%"
        result.add_row([label, t, delta])
        prev = t
    base, padded, prefetched = (r.time_per_iteration_s for r in ladder)
    result.notes.append(
        f"padding saves {(1 - padded / base) * 100:.1f}% (paper: ~15.7%), "
        f"prefetch another {(1 - prefetched / padded) * 100:.1f}% (paper: ~11.7%)"
    )
    return result


def run_sp_poststore(
    n_procs: int = 30,
    *,
    full_size: bool = False,
    seed: int = 808,
) -> ExperimentResult:
    """The in-text poststore experiment: it *hurts* SP."""
    sp = make_sp(full_size=full_size, seed=seed)
    without = sp.run(n_procs)
    with_ps = sp.run(n_procs, poststore=True)
    result = ExperimentResult(
        experiment_id="SP-PS",
        title=f"SP with poststore (using {n_procs} processors)",
        headers=["Variant", "Time per iteration (s)"],
    )
    result.add_row(["prefetch (best)", without.time_per_iteration_s])
    result.add_row(["prefetch + poststore", with_ps.time_per_iteration_s])
    if with_ps.time_per_iteration_s > without.time_per_iteration_s:
        result.notes.append(
            "poststore slows SP down: receivers get the planes in shared "
            "state and pay a ring latency to re-invalidate them when "
            "they write in the next phase (the paper's explanation)"
        )
    return result
