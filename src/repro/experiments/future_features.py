"""The paper's future-work features, implemented and quantified.

Section 4 proposes two architectural improvements KSR never shipped:

* "It would be beneficial to have some prefetching mechanism from the
  local-cache to the sub-cache, given that there is roughly an order
  of magnitude difference between their access times."
* "The ability to selectively turn off sub-caching would help in a
  better use of the sub-cache depending on the access pattern of an
  application" (raised while analysing CG, whose three huge vectors
  flush the 256 KB sub-cache).

This experiment evaluates both on the CG matvec — the workload that
motivated them:

``stock``
    the machine as shipped.
``sub-cache prefetch``
    sequential streams (the matrix values, indices and row pointers)
    have perfectly predictable next sub-blocks; a local-cache→sub-cache
    prefetcher hides a fraction of their fill latency.
``selective sub-caching``
    the streaming arrays bypass the sub-cache entirely (each access
    pays the local-cache latency directly) so the gather through ``x``
    has the whole sub-cache to itself — trading stream cost for gather
    hit rate, exactly the trade the paper hypothesises.
``both``
    the two combined.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.base import ExperimentResult
from repro.kernels.cg import CgKernel
from repro.kernels.costmodel import (
    CYCLES_PER_WORD_ACCESS,
    KernelCostModel,
    SUBBLOCK_FILLS_PER_SUBPAGE,
)
from repro.machine.config import MachineConfig
from repro.memory.streams import concat, gather, sequential

__all__ = ["FutureFeatureCosts", "evaluate_cg_matvec", "run_future_features"]

#: Fraction of sub-cache fill latency a local-cache→sub-cache
#: prefetcher hides on perfectly sequential streams (next sub-block is
#: always known; the 18-cycle fill is easy to run ahead of a ~3
#: cycles/word consumer, so most of it disappears).
_SUBCACHE_PREFETCH_OVERLAP = 0.8

_A_BASE = 0x0000_0000
_COL_BASE = 0x4000_0000
_ROW_BASE = 0x8000_0000
_X_BASE = 0x9000_0000
_Y_BASE = 0xA000_0000


@dataclass(frozen=True)
class FutureFeatureCosts:
    """CG matvec cost decomposition for one machine variant (cycles,
    one processor, P=1)."""

    variant: str
    stream_cycles: float
    gather_cycles: float
    total_cycles: float
    mflops: float


def evaluate_cg_matvec(
    kernel: CgKernel,
    *,
    subcache_prefetch: bool = False,
    selective_subcaching: bool = False,
) -> FutureFeatureCosts:
    """Price one full CG matvec on one processor under a variant.

    The two feature models act where the paper says they would: the
    prefetcher discounts sequential-stream sub-cache fills; selective
    sub-caching moves the streams to the local-cache path and runs the
    gather against an unpolluted sub-cache.
    """
    config = kernel.config
    model = KernelCostModel(config)
    lat = config.latency
    A = kernel.matrix
    nnz = A.nnz
    n = A.n
    seq_stream = concat(
        [
            sequential(_ROW_BASE, n + 1),
            sequential(_COL_BASE, nnz),
            sequential(_A_BASE, nnz),
            sequential(_Y_BASE, n, write_fraction=1.0),
        ]
    )
    gather_stream = gather(_X_BASE, A.col_index)
    # --- sequential streams through the (possibly bypassed) sub-cache
    sc_seq = model.subcache_model.simulate(seq_stream, iterations=2)
    if selective_subcaching:
        # bypass: every stream word is a local-cache access, and the
        # sub-cache sees none of this traffic.  With the proposed
        # prefetcher the sequential local-cache reads stream ahead of
        # the consumer; without it they pay the pipelined-read cost.
        per_word = lat.local_cache_hit_cycles * 0.25  # pipelined reads
        if subcache_prefetch:
            per_word *= 1.0 - _SUBCACHE_PREFETCH_OVERLAP
            per_word = max(per_word, CYCLES_PER_WORD_ACCESS)
        stream_cycles = sc_seq.n_word_accesses * per_word
    else:
        fill = (
            sc_seq.expected_line_misses
            * SUBBLOCK_FILLS_PER_SUBPAGE
            * lat.local_cache_hit_cycles
        )
        if subcache_prefetch:
            fill *= 1.0 - _SUBCACHE_PREFETCH_OVERLAP
        stream_cycles = (
            sc_seq.n_word_accesses * CYCLES_PER_WORD_ACCESS
            + fill
            + sc_seq.expected_frame_allocs * lat.block_alloc_cycles
        )
    # --- the x gather: contends with streams for the sub-cache unless
    # the streams were turned off
    if selective_subcaching:
        gather_sim = model.subcache_model.simulate(gather_stream, iterations=2)
    else:
        combined = concat([seq_stream, gather_stream])
        full = model.subcache_model.simulate(combined, iterations=2)
        # attribute the combined misses minus the stream-only misses
        gather_sim_misses = max(0.0, full.expected_line_misses - sc_seq.expected_line_misses)
        gather_sim = None
    if gather_sim is not None:
        gather_misses = gather_sim.expected_line_misses
    else:
        gather_misses = gather_sim_misses
    # the gather's addresses are data-dependent, so the sequential
    # prefetcher never helps it — only the sub-cache's contents do
    gather_fill = gather_misses * SUBBLOCK_FILLS_PER_SUBPAGE * lat.local_cache_hit_cycles
    gather_cycles = gather_stream.n_word_accesses * CYCLES_PER_WORD_ACCESS + gather_fill
    flops = 2.0 * nnz
    compute = flops * 1.8
    total = compute + stream_cycles + gather_cycles
    name = {
        (False, False): "stock",
        (True, False): "sub-cache prefetch",
        (False, True): "selective sub-caching",
        (True, True): "both",
    }[(subcache_prefetch, selective_subcaching)]
    return FutureFeatureCosts(
        variant=name,
        stream_cycles=stream_cycles,
        gather_cycles=gather_cycles,
        total_cycles=total,
        mflops=flops / config.seconds(total) / 1e6,
    )


def run_future_features(*, full_size: bool = False, seed: int = 212) -> ExperimentResult:
    """Evaluate both proposed features (and their combination) on CG."""
    config = MachineConfig.ksr1(32, seed=seed)
    kernel = (
        CgKernel.paper_size(config)
        if full_size
        else CgKernel(config, n=1400, nnz_target=203_000)
    )
    result = ExperimentResult(
        experiment_id="FUTURE",
        title="Section 4's proposed features, evaluated on the CG matvec (P=1)",
        headers=["variant", "stream Mcy", "gather Mcy", "total Mcy", "MFLOPS"],
    )
    variants = [
        dict(subcache_prefetch=False, selective_subcaching=False),
        dict(subcache_prefetch=True, selective_subcaching=False),
        dict(subcache_prefetch=False, selective_subcaching=True),
        dict(subcache_prefetch=True, selective_subcaching=True),
    ]
    costs = [evaluate_cg_matvec(kernel, **v) for v in variants]
    for c in costs:
        result.add_row(
            [
                c.variant,
                c.stream_cycles / 1e6,
                c.gather_cycles / 1e6,
                c.total_cycles / 1e6,
                c.mflops,
            ]
        )
    stock, prefetch, selective, both = costs
    result.notes.append(
        f"sub-cache prefetch alone: {stock.total_cycles / prefetch.total_cycles:.2f}x; "
        f"selective sub-caching alone: {stock.total_cycles / selective.total_cycles:.2f}x; "
        f"combined: {stock.total_cycles / both.total_cycles:.2f}x on the matvec"
    )
    result.notes.append(
        f"selective sub-caching does what the paper hoped for the gather "
        f"({stock.gather_cycles / max(1.0, selective.gather_cycles):.1f}x cheaper x-accesses) "
        "but alone repays it in uncached stream latency — the two "
        "proposals only pay off together"
    )
    return result
