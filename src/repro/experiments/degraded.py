"""Degraded-mode experiments: the paper's figures under injected faults.

The scalability story of the paper assumes healthy hardware.  This
module re-runs its central artifacts — the figure-3 lock workload, the
figure-4/5 barriers and the EP/CG kernel scaling — on machines carrying
a :class:`~repro.faults.FaultPlan`, quantifying how much of the clean
machine's scaling survives packet corruption, transient cell stalls,
degraded slot arbitration and dead cells.

Every point function here is module-level with picklable arguments so
a :class:`~repro.experiments.sweep.SweepRunner` can fan points across
worker processes and cache them; the :class:`FaultPlan` argument keys
the cache through its ``cache_token`` (see
:func:`repro.experiments.sweep._canonical_value`).

The simulated experiments (locks, barriers) inject faults into the
event-level machine.  The kernel experiments (EP, CG) are analytic —
they price work against :class:`~repro.ring.contention.RingLoadModel` —
so degradation enters as a model swap: a
:class:`DegradedRingLoadModel` that inflates remote latency by the
expected retry multiplier and dead-cell bypass cost, plus a
whole-run availability factor for stall windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigError
from repro.experiments.base import ExperimentResult
from repro.experiments.sweep import SweepRunner
from repro.faults import FaultInjector, FaultPlan
from repro.kernels.cg import CgKernel
from repro.kernels.ep import EpKernel
from repro.machine.api import SharedMemory
from repro.machine.config import MachineConfig, TimerConfig
from repro.machine.ksr import KsrMachine
from repro.obs import Observer, ObsCapture, ObsSpec
from repro.ring.contention import RingLoadModel
from repro.sim.process import LocalOps
from repro.sync.barriers import make_barrier
from repro.sync.locks import (
    HardwareExclusiveLock,
    LockWorkloadParams,
    TicketReadWriteLock,
    run_lock_workload,
)

__all__ = [
    "DegradedPoint",
    "DegradedRingLoadModel",
    "degraded_barrier_point",
    "degraded_cg_point",
    "degraded_ep_point",
    "degraded_lock_point",
    "fault_factors",
    "run_degraded_barriers",
    "run_degraded_kernels",
    "run_degraded_locks",
]

#: Fault rates swept by the ``run_degraded_*`` experiments (per-packet
#: corruption probability); 0 anchors the clean baseline.
DEFAULT_FAULT_RATES = (0.0, 1e-5, 1e-4, 1e-3)


@dataclass(frozen=True)
class DegradedPoint:
    """One degraded measurement: time, fault tallies, optional capture."""

    seconds: float
    #: Sorted ``(counter, value)`` pairs from
    #: :meth:`repro.faults.FaultCounters.snapshot` (empty for analytic
    #: kernel points, which inject no discrete faults).
    faults: tuple[tuple[str, float], ...]
    capture: Optional[ObsCapture] = None

    def fault(self, name: str) -> float:
        """One fault tally by name (0.0 when absent)."""
        return dict(self.faults).get(name, 0.0)


def _check_dead_cells_clear(plan: FaultPlan, n_procs: int) -> None:
    """Simulated workloads place thread ``i`` on cell ``i``."""
    blocked = [c for c in plan.dead_cells if c < n_procs]
    if blocked:
        raise ConfigError(
            f"dead cells {blocked} collide with thread placement on cells "
            f"0..{n_procs - 1}; use dead cell ids >= n_procs"
        )


def _machine_cells(plan: FaultPlan, n_procs: int) -> int:
    """Cells needed: the threads, plus room for any dead hardware."""
    need = max(2, n_procs)
    if plan.dead_cells:
        need = max(need, max(plan.dead_cells) + 1)
    return need


def degraded_lock_point(
    kind: str = "rw",
    n_procs: int = 16,
    read_fraction: float = 0.0,
    *,
    ops: int = 30,
    seed: int = 303,
    plan: FaultPlan = FaultPlan(),
    obs: ObsSpec | None = None,
    batching: bool = False,
) -> DegradedPoint:
    """The figure-3 lock point under ``plan``.

    Mirrors :func:`repro.experiments.locks.measure_lock` exactly —
    same config, seeding and workload — so a zero plan reproduces the
    clean measurement to the bit (pinned by the fault tests).
    ``batching`` enables the macro-event core; with a non-trivial plan
    attached, every fault seam forces the per-event path, so the point
    is byte-identical either way (pinned by the equivalence tests).
    """
    _check_dead_cells_clear(plan, n_procs)
    config = MachineConfig.ksr1(
        n_cells=_machine_cells(plan, n_procs), seed=seed, enable_batching=batching
    )
    machine = KsrMachine(config)
    injector = FaultInjector(plan).attach(machine)
    observer = Observer(obs).attach(machine) if obs is not None else None
    mem = SharedMemory(machine)
    if kind == "hardware":
        lock = HardwareExclusiveLock(mem)
    elif kind == "rw":
        lock = TicketReadWriteLock(mem)
    else:
        raise ValueError(f"unknown lock kind {kind!r}")
    params = LockWorkloadParams(
        ops_per_processor=ops, read_fraction=read_fraction, seed=seed
    )
    result = run_lock_workload(machine, lock, params, n_threads=n_procs)
    faults = tuple(sorted(injector.counters.snapshot().items()))
    capture = None
    if observer is not None:
        share = f" {int(read_fraction * 100)}% read" if kind == "rw" else ""
        capture = observer.capture(
            f"F1 {kind}{share} P={n_procs}",
            kind=kind, n_procs=n_procs, read_fraction=read_fraction,
            ops=ops, seed=seed, plan=plan.describe(),
        )
        observer.detach()
    injector.detach()
    return DegradedPoint(result.total_seconds, faults, capture)


def degraded_barrier_point(
    name: str,
    n_procs: int,
    *,
    reps: int = 6,
    seed: int = 404,
    plan: FaultPlan = FaultPlan(),
    obs: ObsSpec | None = None,
) -> DegradedPoint:
    """One figure-4-style barrier point under ``plan``.

    Mirrors :func:`repro.experiments.barriers.measure_barrier` (KSR-1
    geometry, timer off, mean episode duration discarding the cold
    first episode).
    """
    if n_procs < 2:
        raise ConfigError("a barrier measurement needs at least 2 processors")
    _check_dead_cells_clear(plan, n_procs)
    n_cells = _machine_cells(plan, n_procs)
    if n_cells > 32:
        config = MachineConfig.ksr2(
            n_cells=max(n_cells, 33), seed=seed, timer=TimerConfig(enabled=False)
        )
    else:
        config = MachineConfig.ksr1(
            n_cells=n_cells, seed=seed, timer=TimerConfig(enabled=False)
        )
    machine = KsrMachine(config)
    injector = FaultInjector(plan).attach(machine)
    observer = Observer(obs).attach(machine) if obs is not None else None
    mem = SharedMemory(machine)
    barrier = make_barrier(name, mem, n_procs, use_poststore=True)
    marks: dict[int, list[float]] = {i: [] for i in range(n_procs)}

    def body(pid: int):
        for episode in range(reps):
            yield LocalOps(50)
            yield from barrier.wait(pid, episode)
            marks[pid].append(machine.engine.now)

    for i in range(n_procs):
        machine.spawn(f"bar-{i}", body(i), i)
    machine.run()
    episode_ends = [max(marks[i][e] for i in range(n_procs)) for e in range(reps)]
    episode_starts = [
        min(marks[i][e - 1] for i in range(n_procs)) for e in range(1, reps)
    ]
    durations = [end - start for start, end in zip(episode_starts, episode_ends[1:])]
    seconds = machine.config.seconds(float(np.mean(durations)))
    faults = tuple(sorted(injector.counters.snapshot().items()))
    capture = None
    if observer is not None:
        capture = observer.capture(
            f"F2 {name} barrier P={n_procs}",
            name=name, n_procs=n_procs, reps=reps, seed=seed,
            plan=plan.describe(),
        )
        observer.detach()
    injector.detach()
    return DegradedPoint(seconds, faults, capture)


# ----------------------------------------------------------------------
# Analytic kernels under degradation
# ----------------------------------------------------------------------


def fault_factors(plan: FaultPlan) -> tuple[float, float, float]:
    """``(retry_factor, extra_cycles, availability_inflation)``.

    * ``retry_factor`` — expected slot claims per delivered packet
      under per-packet corruption probability *p* with a budget of
      ``max_retries``: the truncated geometric mean
      ``(1 - p^(m+1)) / (1 - p)``.
    * ``extra_cycles`` — mean added latency per transaction: dead-cell
      bypass hops plus the mean arbitration jitter.
    * ``availability_inflation`` — whole-run slowdown from transient
      stall windows: a cell is unavailable for ``stall_rate *
      stall_cycles`` of its time (capped at 90 % so a nonsensical plan
      degrades instead of dividing by zero).
    """
    p = plan.corruption_rate
    m = plan.max_retries
    retry_factor = (1.0 - p ** (m + 1)) / (1.0 - p) if p > 0.0 else 1.0
    extra = len(plan.dead_cells) * plan.bypass_hop_cycles + plan.slot_jitter_cycles
    unavailable = min(0.9, plan.stall_rate * plan.stall_cycles)
    return retry_factor, extra, 1.0 / (1.0 - unavailable)


@dataclass(frozen=True)
class DegradedRingLoadModel(RingLoadModel):
    """A :class:`RingLoadModel` carrying a fault plan's latency tax.

    Retries multiply the effective latency (each delivery claims
    ``retry_factor`` slots on average, and the delivered packet has
    waited through its own failed attempts); bypass and jitter add a
    flat per-transaction cost.
    """

    retry_factor: float = 1.0
    extra_cycles: float = 0.0

    def effective_latency(self, n_procs: int, think_cycles: float = 0.0) -> float:
        """The clean latency scaled by retries plus the flat fault tax."""
        clean = super().effective_latency(n_procs, think_cycles)
        return clean * self.retry_factor + self.extra_cycles


def _degrade_cost_model(kernel, config: MachineConfig, plan: FaultPlan) -> float:
    """Swap the kernel's load model for a degraded one; returns the
    availability inflation to apply to the modeled time."""
    retry_factor, extra, inflation = fault_factors(plan)
    kernel.cost_model.load_model = DegradedRingLoadModel(
        config.ring, retry_factor=retry_factor, extra_cycles=extra
    )
    return inflation


def degraded_ep_point(
    n_procs: int,
    *,
    n_pairs: int = 1 << 18,
    seed: int = 505,
    plan: FaultPlan = FaultPlan(),
) -> DegradedPoint:
    """EP time on ``n_procs`` processors under ``plan`` (analytic)."""
    config = MachineConfig.ksr1(n_cells=max(2, n_procs), seed=seed)
    kernel = EpKernel(config, n_pairs=n_pairs)
    inflation = _degrade_cost_model(kernel, config, plan)
    run = kernel.run(n_procs)
    run.verify()
    return DegradedPoint(run.time_s * inflation, ())


def degraded_cg_point(
    n_procs: int,
    *,
    seed: int = 606,
    plan: FaultPlan = FaultPlan(),
) -> DegradedPoint:
    """CG time on ``n_procs`` processors under ``plan`` (analytic)."""
    config = MachineConfig.ksr1(n_cells=32, seed=seed)
    kernel = CgKernel(config)
    inflation = _degrade_cost_model(kernel, config, plan)
    run = kernel.run(n_procs)
    return DegradedPoint(run.time_s * inflation, ())


# ----------------------------------------------------------------------
# Experiment tables
# ----------------------------------------------------------------------


def _rate_header(rate: float) -> str:
    return "clean" if rate == 0.0 else f"p={rate:g}"


def _plan_for(rate: float) -> FaultPlan:
    return FaultPlan(corruption_rate=rate)


def run_degraded_locks(
    proc_counts: list[int] | None = None,
    fault_rates: list[float] | None = None,
    *,
    ops: int = 30,
    seed: int = 303,
    runner: SweepRunner | None = None,
) -> ExperimentResult:
    """F1: the figure-3 rw lock (writers only) under packet corruption."""
    if proc_counts is None:
        proc_counts = [2, 4, 8, 16]
    if fault_rates is None:
        fault_rates = list(DEFAULT_FAULT_RATES)
    if runner is None:
        runner = SweepRunner()
    result = ExperimentResult(
        experiment_id="F1",
        title=f"Lock workload under ring packet corruption, {ops} ops/processor (seconds)",
        headers=["P"] + [_rate_header(r) for r in fault_rates]
        + [f"retries {_rate_header(r)}" for r in fault_rates if r],
    )
    calls = [
        dict(kind="rw", n_procs=p, read_fraction=0.0, ops=ops, seed=seed,
             plan=_plan_for(r))
        for p in proc_counts
        for r in fault_rates
    ]
    points = runner.map(degraded_lock_point, calls)
    it = iter(points)
    for p in proc_counts:
        row_points = [next(it) for _ in fault_rates]
        row: list = [p] + [pt.seconds for pt in row_points]
        row += [
            pt.fault("retries")
            for r, pt in zip(fault_rates, row_points)
            if r
        ]
        result.add_row(row)
        for r, pt in zip(fault_rates, row_points):
            result.add_series_point(_rate_header(r), p, pt.seconds)
    clean = result.rows[-1][1]
    worst = result.rows[-1][len(fault_rates)]
    if clean > 0:
        result.notes.append(
            f"at P={proc_counts[-1]}: worst corruption rate costs "
            f"{(worst / clean - 1) * 100:.1f}% over the clean run "
            "(retries burn real slot bandwidth)"
        )
    return result


def run_degraded_barriers(
    proc_counts: list[int] | None = None,
    fault_rates: list[float] | None = None,
    *,
    algorithms: list[str] | None = None,
    reps: int = 6,
    seed: int = 404,
    runner: SweepRunner | None = None,
) -> ExperimentResult:
    """F2: figure-4 barrier episodes under packet corruption."""
    if proc_counts is None:
        proc_counts = [4, 8, 16]
    if fault_rates is None:
        fault_rates = [0.0, 1e-4, 1e-3]
    if algorithms is None:
        algorithms = ["tree", "dissemination"]
    if runner is None:
        runner = SweepRunner()
    result = ExperimentResult(
        experiment_id="F2",
        title=f"Barrier episodes under ring packet corruption, {reps} reps (seconds)",
        headers=["algorithm", "P"] + [_rate_header(r) for r in fault_rates],
    )
    calls = [
        dict(name=a, n_procs=p, reps=reps, seed=seed, plan=_plan_for(r))
        for a in algorithms
        for p in proc_counts
        for r in fault_rates
    ]
    points = iter(runner.map(degraded_barrier_point, calls))
    for a in algorithms:
        for p in proc_counts:
            row_points = [next(points) for _ in fault_rates]
            result.add_row([a, p] + [pt.seconds for pt in row_points])
            for r, pt in zip(fault_rates, row_points):
                result.add_series_point(f"{a} {_rate_header(r)}", p, pt.seconds)
    return result


def run_degraded_kernels(
    proc_counts: list[int] | None = None,
    fault_rates: list[float] | None = None,
    *,
    seed: int = 505,
    runner: SweepRunner | None = None,
) -> ExperimentResult:
    """F3: EP and CG modeled scaling under packet corruption."""
    if proc_counts is None:
        proc_counts = [1, 2, 4, 8, 16, 32]
    if fault_rates is None:
        fault_rates = list(DEFAULT_FAULT_RATES)
    if runner is None:
        runner = SweepRunner()
    result = ExperimentResult(
        experiment_id="F3",
        title="Kernel scaling under ring packet corruption (seconds)",
        headers=["kernel", "P"] + [_rate_header(r) for r in fault_rates],
    )
    ep_calls = [
        dict(n_procs=p, seed=seed, plan=_plan_for(r))
        for p in proc_counts
        for r in fault_rates
    ]
    cg_calls = [
        dict(n_procs=p, plan=_plan_for(r))
        for p in proc_counts
        for r in fault_rates
    ]
    ep_points = iter(runner.map(degraded_ep_point, ep_calls))
    cg_points = iter(runner.map(degraded_cg_point, cg_calls))
    for kernel_name, points in (("EP", ep_points), ("CG", cg_points)):
        for p in proc_counts:
            row_points = [next(points) for _ in fault_rates]
            result.add_row([kernel_name, p] + [pt.seconds for pt in row_points])
            for r, pt in zip(fault_rates, row_points):
                result.add_series_point(
                    f"{kernel_name} {_rate_header(r)}", p, pt.seconds
                )
    result.notes.append(
        "EP's degradation is pure latency tax (little communication); "
        "CG compounds it through its remote-heavy matvec phase"
    )
    return result
