"""EP scalability (section 3.3, in text): linear speedup, ~11 MFLOPS/cell."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.kernels.ep import EpKernel
from repro.machine.config import MachineConfig
from repro.metrics.speedup import ScalingTable

__all__ = ["run_ep_scaling"]


def run_ep_scaling(
    proc_counts: list[int] | None = None,
    *,
    n_pairs: int = 1 << 18,
    seed: int = 505,
) -> ExperimentResult:
    """Run EP across a processor sweep and tabulate speedups."""
    if proc_counts is None:
        proc_counts = [1, 2, 4, 8, 16, 32]
    config = MachineConfig.ksr1(n_cells=max(proc_counts), seed=seed)
    kernel = EpKernel(config, n_pairs=n_pairs)
    result = ExperimentResult(
        experiment_id="EP",
        title=f"Embarrassingly Parallel, {n_pairs} pairs",
        headers=["P", "Time (s)", "Speedup", "Efficiency", "MFLOPS/cell"],
    )
    table = ScalingTable()
    runs = []
    for p in proc_counts:
        run = kernel.run(p)
        run.verify()
        runs.append(run)
        table.add(p, run.time_s)
    for point, run in zip(table.points(), runs):
        result.add_row(
            [point.processors, point.time_s, point.speedup, point.efficiency,
             run.mflops_per_cell]
        )
        result.add_series_point("speedup", point.processors, point.speedup)
    mflops = runs[0].mflops_per_cell
    result.notes.append(
        f"sustained {mflops:.1f} MFLOPS/cell of the 40 MFLOPS peak "
        "(paper: ~11)"
    )
    last = table.points()[-1]
    result.notes.append(
        f"speedup {last.speedup:.2f} on {last.processors} processors "
        "(paper: linear)"
    )
    return result
