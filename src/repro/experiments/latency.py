"""Figure 2: read/write latencies of the memory hierarchy (section 3.1).

The measurement methodology follows the paper exactly:

* **sub-cache** — repeated reads of one resident word.
* **local cache** — two private arrays A and B, both too large for the
  sub-cache; B is read repeatedly to (probabilistically, under random
  replacement) fill the sub-cache, then timed accesses to A miss the
  sub-cache but hit the local cache.
* **network** — each processor first touches a private array (COMA
  ownership by access), then every processor reads its *neighbour's*
  array simultaneously, at subpage stride so each access is a genuine
  ring transaction.  Distinct data everywhere — no false sharing.
* **allocation overheads** — the same runs at 2 KB stride (every
  access allocates a sub-cache block: the +50 % case) and 16 KB stride
  (every access allocates a local-cache page: the +60 % case).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import ConfigError
from repro.experiments.base import ExperimentResult
from repro.experiments.sweep import SweepRunner
from repro.machine.api import SharedArray, SharedMemory
from repro.machine.config import (
    BLOCK_BYTES,
    MachineConfig,
    PAGE_BYTES,
    SUBBLOCK_BYTES,
    SUBPAGE_BYTES,
    TimerConfig,
)
from repro.machine.ksr import KsrMachine
from repro.obs import Observer, ObsCapture, ObsSpec, trace_sink
from repro.sim.process import Op, Read, Write

__all__ = ["LatencyMeasurement", "measure_latencies", "run_figure2"]

#: Private array size per processor: comfortably larger than the
#: 256 KB sub-cache so it cannot be held there, small enough to keep
#: event counts reasonable.
_ARRAY_BYTES = 512 * 1024
#: Timed accesses per processor per measurement.
_SAMPLES = 1500
#: Sweeps of B used to (probabilistically) fill the sub-cache.
_FILL_SWEEPS = 2


@dataclass(frozen=True)
class LatencyMeasurement:
    """Mean per-access latency for one (level, op, P) point, seconds."""

    n_procs: int
    level: str  # "local" | "network"
    op: str  # "read" | "write"
    stride_bytes: int
    mean_latency_s: float

    @property
    def mean_latency_cycles_ksr1(self) -> float:
        """Convenience view at the KSR-1 clock."""
        return self.mean_latency_s * 20e6


def _quiet(n_procs: int, seed: int, batching: bool = False) -> KsrMachine:
    config = MachineConfig.ksr1(
        n_cells=max(2, n_procs),
        seed=seed,
        timer=TimerConfig(enabled=False),
        enable_batching=batching,
    )
    return KsrMachine(config)


def _sweep(arr: SharedArray, stride_bytes: int, samples: int, *, write: bool) -> Iterator[Op]:
    """Timed access loop at a byte stride, wrapping inside the array."""
    n_words = len(arr)
    stride_words = max(1, stride_bytes // 8)
    idx = 0
    for _ in range(samples):
        if write:
            yield Write(arr.addr(idx), 1)
        else:
            yield Read(arr.addr(idx))
        idx = (idx + stride_words) % n_words


def _first_touch(arr: SharedArray) -> Iterator[Op]:
    """Touch every subpage once so the array is owned locally."""
    for word in range(0, len(arr), SUBPAGE_BYTES // 8):
        yield Write(arr.addr(word), 0)


def measure_latencies(
    n_procs: int,
    level: str,
    op: str,
    *,
    stride_bytes: int | None = None,
    seed: int = 101,
    samples: int = _SAMPLES,
    obs: ObsSpec | None = None,
    batching: bool = False,
) -> LatencyMeasurement | tuple[LatencyMeasurement, ObsCapture]:
    """One (level, op, P) measurement on a fresh machine.

    The default stride is one sub-block for the local level (the
    natural miss granularity of the sub-cache) and one subpage for the
    network level (every timed access is a genuine ring transaction —
    how the published 175-cycle number is defined).

    With ``obs`` set, an :class:`~repro.obs.Observer` rides along
    (probes are read-only, so the measurement itself is unchanged) and
    the return value becomes ``(measurement, capture)``.
    """
    if level not in ("local", "network"):
        raise ConfigError(f"unknown level {level!r}")
    if op not in ("read", "write"):
        raise ConfigError(f"unknown op {op!r}")
    if stride_bytes is None:
        stride_bytes = SUBBLOCK_BYTES if level == "local" else SUBPAGE_BYTES
    machine = _quiet(n_procs, seed, batching)
    observer = Observer(obs).attach(machine) if obs is not None else None
    mem = SharedMemory(machine)
    # the timed sweep must never wrap, or revisits become cache hits
    words = max(_ARRAY_BYTES, (samples + 1) * stride_bytes) // 8
    arrays_a = [mem.page_array(f"A{i}", words) for i in range(n_procs)]
    fill_words = _ARRAY_BYTES // 8
    arrays_b = (
        [mem.page_array(f"B{i}", fill_words) for i in range(n_procs)]
        if level == "local"
        else []
    )
    timings: dict[int, float] = {}

    def body(pid: int) -> Iterator[Op]:
        mine_a = arrays_a[pid]
        yield from _first_touch(mine_a)
        if level == "local":
            mine_b = arrays_b[pid]
            yield from _first_touch(mine_b)
            # fill the sub-cache with B by reading it repeatedly
            for _ in range(_FILL_SWEEPS):
                yield from _sweep(
                    mine_b,
                    SUBBLOCK_BYTES,
                    fill_words // (SUBBLOCK_BYTES // 8),
                    write=False,
                )
            target = mine_a
        else:
            # the network case times accesses to the neighbour's array
            target = arrays_a[(pid + 1) % n_procs]
        start = machine.engine.now
        yield from _sweep(target, stride_bytes, samples, write=(op == "write"))
        timings[pid] = machine.engine.now - start

    for i in range(n_procs):
        machine.spawn(f"lat-{i}", body(i), i)
    machine.run()
    mean_cycles = sum(timings.values()) / (n_procs * samples)
    measurement = LatencyMeasurement(
        n_procs=n_procs,
        level=level,
        op=op,
        stride_bytes=stride_bytes,
        mean_latency_s=machine.config.seconds(mean_cycles),
    )
    if observer is not None:
        capture = observer.capture(
            f"fig2 {level} {op} P={n_procs}",
            level=level, op=op, n_procs=n_procs,
            stride_bytes=stride_bytes, seed=seed, samples=samples,
        )
        observer.detach()
        return measurement, capture
    return measurement


def run_figure2(
    proc_counts: list[int] | None = None,
    *,
    seed: int = 101,
    samples: int = _SAMPLES,
    runner: SweepRunner | None = None,
    obs: ObsSpec | None = None,
    trace_dir: str | None = None,
) -> ExperimentResult:
    """Reproduce Figure 2 plus the allocation-overhead call-outs.

    Each (level, op, P) point runs on a fresh, point-seeded machine, so
    ``runner`` may compute them in parallel and/or from the result
    cache — the assembled table is byte-identical regardless.

    ``trace_dir`` (implies a default ``obs``) writes one Chrome-trace
    file per point into that directory without changing the table.
    """
    if proc_counts is None:
        proc_counts = [1, 2, 4, 8, 16, 24, 32]
    if runner is None:
        runner = SweepRunner()
    if trace_dir is not None and obs is None:
        obs = ObsSpec()
    result = ExperimentResult(
        experiment_id="FIG2",
        title="Read/Write latencies on the KSR (microseconds per access)",
        headers=["P", "local read", "local write", "network read", "network write"],
    )
    calls: list[dict] = []
    for p in proc_counts:
        for level in ("local", "network"):
            for op in ("read", "write"):
                if level == "network" and p < 2:
                    continue  # a 1-processor "neighbour" is itself
                calls.append(dict(n_procs=p, level=level, op=op, seed=seed, samples=samples))
    # allocation overhead call-outs at one processor
    calls.append(dict(n_procs=1, level="local", op="read", seed=seed, samples=samples))
    calls.append(
        dict(
            n_procs=1, level="local", op="read",
            stride_bytes=BLOCK_BYTES, seed=seed, samples=samples,
        )
    )
    calls.append(dict(n_procs=2, level="network", op="read", seed=seed, samples=samples))
    calls.append(
        dict(
            n_procs=2, level="network", op="read",
            stride_bytes=PAGE_BYTES, seed=seed, samples=samples,
        )
    )
    if obs is not None:
        for call in calls:
            call["obs"] = obs
    sink = trace_sink("FIG2", trace_dir) if trace_dir is not None else None
    raw = runner.map(measure_latencies, calls, on_result=sink)
    values = iter(r[0] if obs is not None else r for r in raw)
    for p in proc_counts:
        row = [p]
        for level in ("local", "network"):
            for op in ("read", "write"):
                if level == "network" and p < 2:
                    row.append("-")
                    continue
                m = next(values)
                row.append(m.mean_latency_s * 1e6)
                result.add_series_point(f"{level} {op}", p, m.mean_latency_s)
        result.add_row(row)
    base_local, block_local, base_net, page_net = values
    block_rise = block_local.mean_latency_s / base_local.mean_latency_s - 1.0
    page_rise = page_net.mean_latency_s / base_net.mean_latency_s - 1.0
    result.notes.append(
        f"2KB-block-allocating stride raises local access time by "
        f"{block_rise * 100:.0f}% (paper: ~50%)"
    )
    result.notes.append(
        f"16KB-page-allocating stride raises remote access time by "
        f"{page_rise * 100:.0f}% (paper: ~60%)"
    )
    net = result.series.get("network read", [])
    if len(net) >= 2:
        rise = net[-1][1] / net[0][1] - 1.0
        result.notes.append(
            f"network read latency rises {rise * 100:.1f}% from P={net[0][0]:.0f} "
            f"to P={net[-1][0]:.0f} (paper: ~8% at 32)"
        )
    return result
