"""Figure 8: the combined CG and IS speedup curves.

The paper plots both kernels' speedups on one chart; `run_figure8`
reruns both scaling studies and returns a single result whose series
can be rendered together (``ksr-experiments fig8 --chart``).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.cg_scaling import make_cg
from repro.experiments.is_scaling import make_is
from repro.metrics.speedup import ScalingTable

__all__ = ["run_figure8"]


def run_figure8(
    proc_counts: list[int] | None = None,
    *,
    full_size: bool = False,
    seed: int = 314,
) -> ExperimentResult:
    """CG and IS speedup vs processors, on one artifact."""
    if proc_counts is None:
        proc_counts = [1, 2, 4, 8, 16, 32]
    cg = make_cg(full_size=full_size, seed=seed)
    is_kernel = make_is(full_size=full_size, seed=seed)
    cg_table = ScalingTable.from_pairs(
        [(p, cg.run(p).time_s) for p in proc_counts]
    )
    is_table = ScalingTable.from_pairs(
        [(p, is_kernel.run(p).time_s) for p in proc_counts]
    )
    result = ExperimentResult(
        experiment_id="FIG8",
        title="CG and IS scalability"
        + ("" if full_size else " (test scale; --full for the paper's sizes)"),
        headers=["P", "CG speedup", "IS speedup"],
    )
    for cg_pt, is_pt in zip(cg_table.points(), is_table.points()):
        result.add_row([cg_pt.processors, cg_pt.speedup, is_pt.speedup])
        result.add_series_point("CG", cg_pt.processors, cg_pt.speedup)
        result.add_series_point("IS", is_pt.processors, is_pt.speedup)
    cg_last, is_last = result.rows[-1][1], result.rows[-1][2]
    if cg_last > is_last:
        result.notes.append(
            "CG ends above IS at the full ring, as in the paper's "
            "Figure 8 (IS flattens after 16 processors: phases 4/6 plus "
            "ring saturation)"
        )
    return result
