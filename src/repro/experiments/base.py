"""Common experiment-result plumbing and the paper's published anchors.

``PAPER_ANCHORS`` collects every number the paper prints that this
reproduction compares against; EXPERIMENTS.md and several tests are
generated from / checked against this single table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.util.tables import Table

__all__ = ["ExperimentResult", "PAPER_ANCHORS"]


@dataclass
class ExperimentResult:
    """One reproduced artifact (a table or one figure's series)."""

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: For figure-style results: series name -> [(x, y), ...]
    series: dict[str, list[tuple[float, float]]] = field(default_factory=dict)

    def add_row(self, values: Sequence[Any]) -> None:
        """Append one table row."""
        self.rows.append(list(values))

    def add_series_point(self, name: str, x: float, y: float) -> None:
        """Append one figure point."""
        self.series.setdefault(name, []).append((x, y))

    def render(self) -> str:
        """Plain-text report section."""
        table = Table(self.headers, title=f"{self.experiment_id}: {self.title}")
        for row in self.rows:
            table.add_row(row)
        parts = [table.render()]
        if self.notes:
            parts.append("")
            parts.extend(f"  note: {n}" for n in self.notes)
        return "\n".join(parts)

    def column(self, header: str) -> list[Any]:
        """All values of one column (test convenience)."""
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]


#: Published values (paper tables, figure call-outs and in-text claims).
PAPER_ANCHORS: dict[str, Any] = {
    # Section 2/3.1: latencies (cycles @ 20 MHz)
    "subcache_hit_cycles": 2,
    "local_cache_hit_cycles": 18,
    "remote_latency_cycles": 175,
    "ring_latency_rise_at_32": 0.08,  # "about 8% for 32 processors"
    "block_alloc_overhead": 0.50,  # +50% local-cache access time
    "page_alloc_overhead": 0.60,  # +60% remote access time
    # Table 1: CG (n=14000, nnz=2,030,000)
    "cg_times": {1: 1638.85970, 2: 930.47700, 4: 565.22150,
                 8: 259.55210, 16: 126.51990, 32: 72.00830},
    "cg_speedups": {2: 1.76131, 4: 2.89950, 8: 6.31418,
                    16: 12.95340, 32: 22.75930},
    "cg_serial_fractions": {2: 0.135518, 4: 0.126516, 8: 0.038141,
                            16: 0.015680, 32: 0.013097},
    # Table 2: IS (2^23 keys)
    "is_times": {1: 692.95492, 2: 351.03866, 4: 180.95085, 8: 95.79978,
                 16: 54.80835, 30: 36.56198, 32: 36.63433},
    "is_speedups": {2: 1.97401, 4: 3.82952, 8: 7.23337, 16: 12.64320,
                    30: 18.95290, 32: 18.91550},
    "is_serial_fractions": {2: 0.013166, 4: 0.014839, 8: 0.015141,
                            16: 0.017700, 30: 0.020099, 32: 0.022314},
    # Table 3: SP (64^3), seconds per iteration
    "sp_times_per_iter": {1: 39.02, 2: 19.48, 4: 10.02, 8: 5.04,
                          16: 2.55, 31: 1.40},
    "sp_speedups": {2: 2.0, 4: 3.9, 8: 7.7, 16: 15.3, 31: 27.8},
    # Table 4: SP optimization ladder at 30 processors
    "sp_ladder": {"base": 2.54, "padding": 2.14, "prefetch": 1.89},
    # EP (in text)
    "ep_mflops_per_cell": 11.0,
    "ep_peak_mflops": 40.0,
    # CG poststore (in text): ~3% at 16 processors, more below, less above
    "cg_poststore_gain_at_16": 0.03,
    # Barriers (Figure 4 call-outs / orderings)
    "barrier_orderings_ksr1": [
        # (faster, slower) pairs the paper establishes at 32 processors
        ("tournament(M)", "tournament"),
        ("tournament(M)", "dissemination"),
        ("tournament(M)", "counter"),
        ("tree(M)", "tree"),
        ("mcs(M)", "mcs"),
        ("dissemination", "counter"),
        ("tree", "counter"),
        ("tournament", "counter"),
        ("mcs", "counter"),
    ],
}
