"""Two-level ring hierarchy.

A KSR box is up to 34 leaf rings (32 cells each) hanging off one
level-1 ring of higher bandwidth.  A same-ring transaction is one
circuit of the leaf ring.  A cross-ring transaction chains three legs —
source leaf ring, level-1 ring, destination leaf ring — each claiming a
slot on its ring, plus two ARD crossings.  This is what produces the
paper's "sudden jump in execution time when the number of processors is
increased beyond 32" on the 64-cell KSR-2.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


from repro.errors import ConfigError
from repro.machine.config import MachineConfig
from repro.ring.ard import ArdRouter
from repro.ring.slotted_ring import RingGrant, SlottedRing, TransactionOutcome
from repro.util.rng import SeedStream

__all__ = ["PathTiming", "RingHierarchy"]


@dataclass(slots=True, eq=False)
class PathTiming:
    """Timing of a (possibly multi-ring) transaction."""

    requested_at: float
    completed_at: float
    wait_cycles: float
    crossed_rings: bool
    legs: tuple[RingGrant, ...]
    #: Extra slots claimed by fault retries, summed over the legs (plus
    #: any responder-timeout re-issues added by the fault injector).
    retries: int = 0
    #: Worst delivery outcome over the legs (``OK`` on clean machines).
    outcome: TransactionOutcome = TransactionOutcome.OK
    #: Dead cells the packet was routed past (ring bypass latency).
    bypass_hops: int = 0

    @property
    def total_cycles(self) -> float:
        """End-to-end latency including queueing on every leg."""
        return self.completed_at - self.requested_at


class RingHierarchy:
    """All rings of one machine, with slot-level contention per ring."""

    #: Bandwidth multiple of the level-1 ring over a leaf ring (the
    #: paper only says "higher bandwidth"; the KSR:HighBandwidth level-1
    #: ring was 2x in the shipped machines).
    LEVEL1_BANDWIDTH_FACTOR = 2

    def __init__(self, config: MachineConfig, seeds: SeedStream):
        self.config = config
        self.leaf_rings = [
            SlottedRing(config.ring, seeds.rng(f"ring/leaf/{i}"))
            for i in range(config.n_rings)
        ]
        self.ards = [ArdRouter(ring_index=i) for i in range(config.n_rings)]
        level1_cfg = replace(
            config.ring,
            slots_per_subring=config.ring.slots_per_subring * self.LEVEL1_BANDWIDTH_FACTOR,
        )
        self.level1 = SlottedRing(level1_cfg, seeds.rng("ring/level1"))
        for i, ring in enumerate(self.leaf_rings):
            ring.label = f"leaf{i}"
        self.level1.label = "level1"
        # Hot-path lookup table: cell ids are validated once here, so
        # per-transaction routing is a plain list index.
        self._ring_index = [config.ring_of(c) for c in range(config.n_cells)]
        #: Fault seam: a :class:`repro.faults.FaultInjector` (or ``None``).
        #: When set, ``before_transact``/``after_transact`` bracket every
        #: path — responder-stall gating on the way in, dead-cell bypass
        #: latency on the way out.  One branch per transaction when unset.
        self.fault_injector = None

    # ------------------------------------------------------------------

    def ring_of(self, cell_id: int) -> int:
        """Leaf ring hosting ``cell_id``."""
        return self._ring_index[cell_id]

    def transact(
        self,
        now: float,
        src_cell: int,
        dst_cell: int | None,
        subpage_id: int,
    ) -> PathTiming:
        """Time a coherence transaction from ``src_cell``.

        ``dst_cell`` is the responding cell (owner/holder of the
        subpage); ``None`` means the request is satisfied on the source
        ring (e.g. an invalidation round with all sharers local, or a
        miss that allocates fresh data).
        """
        injector = self.fault_injector
        if injector is not None:
            now = injector.before_transact(now, src_cell, dst_cell, subpage_id)
        ring_index = self._ring_index
        src_ring = ring_index[src_cell]
        if dst_cell is None or ring_index[dst_cell] == src_ring:
            grant = self.leaf_rings[src_ring].transact(now, subpage_id)
            timing = PathTiming(
                now,
                grant.completed_at,
                grant.injected_at - now,
                False,
                (grant,),
                grant.attempts - 1,
                grant.outcome,
            )
        else:
            dst_ring = ring_index[dst_cell]
            ard = self.ards[src_ring]
            txn = ard.open(subpage_id, src_ring, dst_ring, now)
            leg1 = self.leaf_rings[src_ring].transact(
                now, subpage_id, overhead_cycles=0.0
            )
            leg2 = self.level1.transact(
                leg1.completed_at + ard.crossing_cycles,
                subpage_id,
                overhead_cycles=0.0,
            )
            leg3 = self.leaf_rings[dst_ring].transact(
                leg2.completed_at + self.ards[dst_ring].crossing_cycles,
                subpage_id,
            )
            wait = leg1.wait_cycles + leg2.wait_cycles + leg3.wait_cycles
            retries = leg1.attempts + leg2.attempts + leg3.attempts - 3
            outcome = max(leg1.outcome, leg2.outcome, leg3.outcome)
            txn.retries = retries
            if outcome is TransactionOutcome.TIMED_OUT:
                ard.timeout(txn, leg3.completed_at)
            else:
                ard.complete(txn, leg3.completed_at)
            timing = PathTiming(
                now, leg3.completed_at, wait, True, (leg1, leg2, leg3),
                retries, outcome,
            )
        if injector is not None:
            timing = injector.after_transact(timing, src_cell, dst_cell)
        return timing

    # ------------------------------------------------------------------

    def uncontended_latency(self, src_cell: int, dst_cell: int | None) -> float:
        """Zero-load latency of the path (no slot queueing, no jitter)."""
        cfg = self.config
        if dst_cell is None or cfg.same_ring(src_cell, dst_cell):
            return cfg.ring.remote_latency_cycles
        src_ring, dst_ring = self.ring_of(src_cell), self.ring_of(dst_cell)
        return (
            cfg.ring.circuit_cycles  # source leaf leg
            + self.level1.config.circuit_cycles
            + cfg.ring.remote_latency_cycles  # destination leaf leg + overhead
            + self.ards[src_ring].crossing_cycles
            + self.ards[dst_ring].crossing_cycles
        )

    @property
    def n_transactions(self) -> int:
        """Total transactions across all rings."""
        return self.level1.n_transactions + sum(r.n_transactions for r in self.leaf_rings)

    @property
    def all_rings(self) -> list["SlottedRing"]:
        """Every ring of the machine, leaves first then level-1.

        The level-1 ring is included even on single-ring machines where
        it never carries traffic; observers that iterate this list see
        one stable ordering regardless of geometry.
        """
        return [*self.leaf_rings, self.level1]

    @property
    def total_slots(self) -> int:
        """Slot count summed over every ring (utilization denominator)."""
        return sum(ring.config.total_slots for ring in self.all_rings)

    def validate_cells(self, *cells: int) -> None:
        """Raise ConfigError for out-of-range cell ids (test helper)."""
        for c in cells:
            if not 0 <= c < self.config.n_cells:
                raise ConfigError(f"cell {c} out of range")
