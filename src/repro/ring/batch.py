"""Closed-form grant coalescing for hardware ``get_subpage`` retries.

Under lock contention the engine's event population is dominated by
:meth:`repro.coherence.protocol.CoherenceProtocol._block_on_atomic`
retry events: each blocked cell's request circulates once per interval,
burning a real ring slot, and reschedules itself off its own completion
time.  On the Figure 3 acceptance workload these retries are ~94 % of
all events.  Each one is a fixed arithmetic step over the sub-ring's
``(free_time, slot)`` grant heap — precisely the chain shape
:class:`repro.sim.batch.MacroAdvancer` advances in closed form.

Contention *between* retry chains needs no fallback: chains interact
only through the shared grant heap, and the window executes steps in
exact global ``(time, seq)`` order, so each step sees the heap state
the per-event run would have shown it.  What does force the per-event
path:

* any fault seam — an attached injector's ring hooks
  (``fault_hook``/``fault_jitter``), hierarchy-level stall/dead-cell
  shaping, or protocol fault accounting — because those seams draw from
  their own RNG streams and charge per-retry counters the closed form
  does not replicate;
* determinism audits (engine audit hook or shuffled ties);
* release/hand-off traffic — ``_drain_atomic_waiters`` cancels the
  chain exactly as it would cancel the retry event.

Observability probes are *not* a fallback condition: the ring probe is
invoked inside the step and the engine probe once per virtual fire, so
an observed batched run captures byte-identical series.

The grant arithmetic below is the one other place besides
:meth:`SlottedRing._claim` allowed to ``heapreplace`` a ring's grant
heap — enforced by lint rule KSR114 (``ksr-analyze lint``).
"""

from __future__ import annotations

from heapq import heapreplace
from typing import TYPE_CHECKING

from repro.sim.batch import MacroAdvancer, MacroChain
from repro.sim.engine import Engine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.memory.perfmon import PerfMonitor
    from repro.ring.hierarchy import RingHierarchy

__all__ = ["BatchAdvancer"]


class _GspRetryChain(MacroChain):
    """Payload of one blocked cell's self-clocked retry loop."""

    __slots__ = ("perfmon", "ring", "subring", "interval")


class BatchAdvancer(MacroAdvancer):
    """Advances ``get_subpage`` retry chains in closed form.

    Wired by :class:`repro.machine.ksr.KsrMachine` onto
    ``CoherenceProtocol.batch_advancer`` when
    ``MachineConfig.enable_batching`` is set; otherwise the protocol
    keeps its per-event retry closures and this class is never
    instantiated.
    """

    def __init__(self, engine: Engine, hierarchy: "RingHierarchy"):
        super().__init__(engine)
        self._hierarchy = hierarchy

    def gsp_chain_allowed(self) -> bool:
        """Machine-level batchability: no audits, no fault shaping.

        Checked at chain-start time; fault injectors attach before a
        run begins, so a chain admitted here stays clean for its whole
        life.  (Per-ring hooks are re-checked in
        :meth:`start_gsp_chain`.)
        """
        engine = self._engine
        return (
            engine.audit_hook is None
            and engine._tie_rng is None
            and self._hierarchy.fault_injector is None
        )

    def start_gsp_chain(
        self,
        perfmon: "PerfMonitor",
        cell_id: int,
        subpage_id: int,
        interval: float,
    ) -> "_GspRetryChain | None":
        """Begin a retry chain for ``cell_id`` blocked on ``subpage_id``.

        Returns ``None`` when the cell's leaf ring carries fault hooks —
        the caller then falls back to the per-event retry closure.  The
        returned chain exposes ``cancel()`` and substitutes for the
        retry event in the protocol's waiter record.
        """
        hierarchy = self._hierarchy
        ring = hierarchy.leaf_rings[hierarchy._ring_index[cell_id]]
        if ring.fault_hook is not None or ring.fault_jitter is not None:
            return None
        chain = _GspRetryChain()
        chain.perfmon = perfmon
        chain.ring = ring
        chain.subring = subpage_id % ring._n_subrings
        chain.interval = interval
        self._start(chain, interval)
        return chain

    def _step(self, chain: MacroChain, at: float) -> float:
        """One retry: claim a slot, charge the monitors, self-clock.

        Bit-exact inline of the per-event path — the protocol's
        ``hardware_retry`` closure calling ``RingHierarchy.transact``
        (same-ring, no injector) calling ``SlottedRing._claim`` — with
        identical float operations in identical order and the same
        jitter-buffer consumption.  Only the ``RingGrant``/``PathTiming``
        result objects, which that path immediately discards, are not
        built.
        """
        perfmon = chain.perfmon  # type: ignore[attr-defined]
        perfmon.get_subpage_retries += 1
        ring = chain.ring  # type: ignore[attr-defined]
        buf = ring._jitter
        if not buf:
            ring._refill_jitter()
        earliest = at + buf.pop()
        heap = ring._free[chain.subring]  # type: ignore[attr-defined]
        free, slot = heap[0]
        injected = earliest if earliest > free else free
        heapreplace(heap, (injected + ring._hold, slot))
        completed = injected + ring._circuit + ring._overhead
        ring.n_transactions += 1
        ring.total_wait_cycles += injected - at
        ring.total_transit_cycles += completed - injected
        if ring.probe is not None:
            ring.probe(ring, at, injected - at, completed - injected)
        perfmon.ring_transactions += 1
        delta = completed - at
        perfmon.ring_cycles += delta
        interval = chain.interval  # type: ignore[attr-defined]
        return delta if delta > interval else interval
