"""The ARD routing unit between ring levels.

"These 'leaf' rings connect to rings of higher bandwidth through a
routing unit (ARD)."  The ARD watches its leaf ring; when a request
finds no responder at the current level it is propagated up to the
level-1 ring (and from there down into the leaf ring that holds a
copy).  We model the ARD as a fixed per-crossing latency plus the
queueing of the rings it forwards onto.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ArdRouter"]


@dataclass(frozen=True)
class ArdRouter:
    """Router between a leaf ring and the level-1 ring.

    ``crossing_cycles`` is charged once per direction change
    (leaf→level-1 or level-1→leaf); a full remote access to another
    leaf ring crosses twice on the way out and the response rides the
    same slots back, so the hierarchy charges ``2 * crossing_cycles``
    per inter-ring transaction.
    """

    ring_index: int
    crossing_cycles: float = 25.0

    def __post_init__(self) -> None:
        if self.crossing_cycles < 0:
            raise ValueError("ARD crossing cost cannot be negative")
