"""The ARD routing unit between ring levels.

"These 'leaf' rings connect to rings of higher bandwidth through a
routing unit (ARD)."  The ARD watches its leaf ring; when a request
finds no responder at the current level it is propagated up to the
level-1 ring (and from there down into the leaf ring that holds a
copy).  We model the ARD as a fixed per-crossing latency plus the
queueing of the rings it forwards onto.

The real ARD also held per-request state: an outstanding inter-ring
request stayed tabled until its response descended, which is what let
the hardware detect lost responses and re-issue requests.  The model
mirrors that with an explicit transaction table — every cross-ring
path opens an :class:`ArdTransaction` at the source ARD and resolves
it exactly once (completed or timed out).  Resolving a transaction
twice is a simulator bug and raises
:class:`~repro.errors.SimulationError` naming the transaction; the
per-transaction ``retries`` counter is where the fault layer's
timeout/retry machinery (:mod:`repro.faults`) records re-issues.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.errors import SimulationError

__all__ = ["ArdRouter", "ArdTransaction", "ArdTxnState"]


class ArdTxnState(Enum):
    """Lifecycle of one tabled inter-ring request."""

    PENDING = "pending"
    COMPLETED = "completed"
    TIMED_OUT = "timed_out"


@dataclass(slots=True, eq=False)
class ArdTransaction:
    """One outstanding request/response pair tabled at an ARD."""

    txn_id: int
    subpage_id: int
    src_ring: int
    dst_ring: int
    opened_at: float
    state: ArdTxnState = ArdTxnState.PENDING
    resolved_at: Optional[float] = None
    #: Re-issues recorded against this request (fault timeouts/retries).
    retries: int = 0

    def describe(self) -> str:
        """Identity string used in error messages and diagnostics."""
        return (
            f"ARD txn #{self.txn_id} (subpage {self.subpage_id}, "
            f"ring {self.src_ring}->{self.dst_ring}, opened at "
            f"{self.opened_at:.1f})"
        )


class ArdRouter:
    """Router between a leaf ring and the level-1 ring.

    ``crossing_cycles`` is charged once per direction change
    (leaf→level-1 or level-1→leaf); a full remote access to another
    leaf ring crosses twice on the way out and the response rides the
    same slots back, so the hierarchy charges ``2 * crossing_cycles``
    per inter-ring transaction.
    """

    def __init__(self, ring_index: int, crossing_cycles: float = 25.0):
        if crossing_cycles < 0:
            raise ValueError("ARD crossing cost cannot be negative")
        self.ring_index = ring_index
        self.crossing_cycles = crossing_cycles
        self._next_txn_id = 0
        self._pending: dict[int, ArdTransaction] = {}
        self.n_opened = 0
        self.n_completed = 0
        self.n_timed_out = 0

    # ------------------------------------------------------------------
    # Transaction table
    # ------------------------------------------------------------------

    def open(
        self, subpage_id: int, src_ring: int, dst_ring: int, at: float
    ) -> ArdTransaction:
        """Table a new outstanding inter-ring request."""
        txn = ArdTransaction(
            txn_id=self._next_txn_id,
            subpage_id=subpage_id,
            src_ring=src_ring,
            dst_ring=dst_ring,
            opened_at=at,
        )
        self._next_txn_id += 1
        self._pending[txn.txn_id] = txn
        self.n_opened += 1
        return txn

    def complete(self, txn: ArdTransaction, at: float) -> None:
        """Resolve ``txn``: its response descended at time ``at``."""
        self._resolve(txn, at, ArdTxnState.COMPLETED)
        self.n_completed += 1

    def timeout(self, txn: ArdTransaction, at: float) -> None:
        """Resolve ``txn`` as lost: its retry budget expired at ``at``."""
        self._resolve(txn, at, ArdTxnState.TIMED_OUT)
        self.n_timed_out += 1

    def _resolve(self, txn: ArdTransaction, at: float, state: ArdTxnState) -> None:
        if txn.state is not ArdTxnState.PENDING:
            raise SimulationError(
                f"{txn.describe()} resolved twice: already "
                f"{txn.state.value} at {txn.resolved_at}"
            )
        if txn.txn_id not in self._pending:
            raise SimulationError(f"{txn.describe()} is not tabled at this ARD")
        del self._pending[txn.txn_id]
        txn.state = state
        txn.resolved_at = at

    @property
    def outstanding(self) -> int:
        """Requests currently tabled (opened but not yet resolved)."""
        return len(self._pending)

    def pending_transactions(self) -> list[ArdTransaction]:
        """The tabled requests, oldest first (diagnostics)."""
        return [self._pending[k] for k in sorted(self._pending)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ArdRouter(ring_index={self.ring_index}, "
            f"crossing_cycles={self.crossing_cycles}, "
            f"outstanding={self.outstanding})"
        )
