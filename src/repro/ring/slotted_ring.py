"""Cycle-level model of one slotted, pipelined, unidirectional ring.

The lowest-level KSR ring carries 24 slots organised as two
address-interleaved sub-rings of 12 slots each; a cell injects a
transaction into a passing empty slot of the sub-ring selected by the
subpage address, and because the ring is unidirectional the combined
request→responder→response path is one full circuit regardless of the
responder's position.

The model makes slot occupancy explicit:

* a transaction waits for the earliest free slot of its sub-ring (plus
  a jitter in ``[0, slot_spacing)`` representing alignment with the
  next passing slot),
* holds that slot for one full circuit,
* completes after circuit + protocol-overhead cycles.

Round-robin fairness falls out of "earliest free slot" ordering;
forward progress is guaranteed because slots are always released after
one circuit.

Grant selection keeps each sub-ring's slots in a min-heap of
``(free_time, slot_index)`` pairs, so picking the earliest-free slot is
O(log slots) instead of a linear scan.  The heap's lexicographic order
(earliest free time, then lowest slot index) is exactly the order the
old ``min()`` scan produced, so grant sequences are bit-for-bit
identical (verified by ``tests/ring/test_slotted_ring.py``).

Faults are opt-in through two seams (:mod:`repro.faults`): a
``fault_hook`` that may declare a delivered packet corrupted — the
transaction then re-claims a real slot per retry (burning bandwidth)
until the hook accepts it or declares a timeout — and a
``fault_jitter`` source adding degraded-slot alignment delay.  Both are
``None`` by default and cost one branch; with no hook installed a
transaction always succeeds on its first attempt with
:attr:`TransactionOutcome.OK`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from heapq import heapreplace
from typing import Callable, Optional, Union

import numpy as np

from repro.errors import ConfigError
from repro.machine.config import RingConfig

__all__ = ["RingGrant", "SlottedRing", "TransactionOutcome"]

# Determinism sinks for `ksr-analyze flow` (KSR110): slot grant
# ordering is replay-sensitive — request arguments must not depend on
# wall clock, address hashes, or set iteration order.
__ksr_flow_sinks__ = ("SlottedRing.transact", "SlottedRing._claim")

#: Slot-alignment jitter values drawn from the ring's private RNG
#: stream per batch (one numpy call amortised over many transactions).
_JITTER_BATCH = 256


class TransactionOutcome(IntEnum):
    """How a (possibly multi-leg) ring transaction was delivered.

    Ordered by severity so aggregating a path is ``max()`` over legs.
    Before the fault subsystem, delivery was implicitly always-success;
    ``OK`` is that path and remains the only outcome unless a
    :mod:`repro.faults` hook is installed.
    """

    #: Delivered on the first attempt.
    OK = 0
    #: Delivered after one or more CRC-detected corruptions and retries.
    RETRIED = 1
    #: Retry budget exhausted; delivery escalated (counted as a timeout).
    TIMED_OUT = 2


#: A fault hook's verdict on one delivered packet: ``None`` accepts it,
#: a float re-requests a slot at that absolute time (retry w/ backoff),
#: ``TIMED_OUT`` gives up after the bounded retries.
FaultVerdict = Union[float, TransactionOutcome, None]


@dataclass(slots=True, eq=False)
class RingGrant:
    """Timing of one granted ring transaction."""

    #: Time the transaction was requested.
    requested_at: float
    #: Time the slot was first claimed (requested_at + wait).
    injected_at: float
    #: Time the (final, accepted) response arrived back at the requester.
    completed_at: float
    #: Which sub-ring carried it.
    subring: int
    #: Slots claimed in total (1 + retries forced by packet corruption).
    attempts: int = 1
    #: How delivery concluded (always ``OK`` without a fault hook).
    outcome: TransactionOutcome = TransactionOutcome.OK

    @property
    def wait_cycles(self) -> float:
        """Queueing delay before a free slot passed by."""
        return self.injected_at - self.requested_at

    @property
    def total_cycles(self) -> float:
        """Request-to-response latency including queueing and any
        fault-forced retries."""
        return self.completed_at - self.requested_at


class SlottedRing:
    """One ring level with explicit slot bookkeeping.

    Parameters
    ----------
    config:
        Ring geometry and timing.
    rng:
        Source of the slot-alignment jitter.  With a seeded generator
        the whole simulation is reproducible.  The generator becomes
        private to this ring: jitter values are drawn from it in
        batches, so interleaving other draws on the same generator
        would not be reproducible anyway.
    """

    def __init__(self, config: RingConfig, rng: np.random.Generator):
        if config.total_slots < 1:
            raise ConfigError("ring must carry at least one slot")
        self.config = config
        self.rng = rng
        # Per-sub-ring min-heap of (earliest free time, slot index).
        # Initial entries are already heap-ordered.
        self._free = [
            [(0.0, k) for k in range(config.slots_per_subring)]
            for _ in range(config.n_subrings)
        ]
        # Scalars hoisted out of the per-transaction path (RingConfig
        # derived values are properties).
        self._n_subrings = config.n_subrings
        self._spacing = config.slot_spacing_cycles
        self._hold = config.slot_hold_cycles
        self._circuit = config.circuit_cycles
        self._overhead = config.protocol_overhead_cycles
        self._jitter: list[float] = []
        self.n_transactions = 0
        self.total_wait_cycles = 0.0
        self.total_transit_cycles = 0.0
        #: Name used by observability exports ("leaf0", "level1", ...);
        #: assigned by :class:`~repro.ring.hierarchy.RingHierarchy`.
        self.label = "ring"
        #: Opt-in observability probe called per transaction with
        #: ``(ring, requested_at, wait_cycles, transit_cycles)`` — see
        #: :mod:`repro.obs`.  ``None`` (the default) costs one branch.
        self.probe: Optional[Callable[["SlottedRing", float, float, float], None]] = None
        #: Opt-in fault seam called per delivered packet with
        #: ``(ring, subring, completed_at, attempt)``; returns a
        #: :data:`FaultVerdict`.  Installed by
        #: :class:`repro.faults.FaultInjector` for lossy rings.
        self.fault_hook: Optional[
            Callable[["SlottedRing", int, float, int], FaultVerdict]
        ] = None
        #: Opt-in extra slot-alignment delay per claim (degraded slot
        #: timing margins); draws must come from the fault injector's
        #: own stream, never this ring's workload stream.
        self.fault_jitter: Optional[Callable[[], float]] = None

    def subring_of(self, subpage_id: int) -> int:
        """Sub-ring carrying traffic for ``subpage_id`` (address
        interleaving: consecutive subpages alternate sub-rings)."""
        return subpage_id % self._n_subrings

    def transact(
        self,
        now: float,
        subpage_id: int,
        *,
        overhead_cycles: float | None = None,
    ) -> RingGrant:
        """Claim a slot at ``now`` and return the transaction timing.

        ``overhead_cycles`` overrides the configured per-transaction
        protocol overhead (the hierarchy passes 0 for intermediate legs
        of a multi-ring path).
        """
        if overhead_cycles is None:
            overhead_cycles = self._overhead
        subring = subpage_id % self._n_subrings
        injected, completed = self._claim(now, subring, overhead_cycles)
        hook = self.fault_hook
        if hook is None:
            return RingGrant(now, injected, completed, subring)
        attempts = 1
        outcome = TransactionOutcome.OK
        while True:
            verdict = hook(self, subring, completed, attempts)
            if verdict is None:
                break
            if verdict is TransactionOutcome.TIMED_OUT:
                outcome = TransactionOutcome.TIMED_OUT
                break
            # CRC failure: the retry claims a real slot at the hook's
            # backoff time, so lossy rings burn genuine bandwidth.
            _, completed = self._claim(verdict, subring, overhead_cycles)
            attempts += 1
            outcome = TransactionOutcome.RETRIED
        return RingGrant(now, injected, completed, subring, attempts, outcome)

    def _claim(
        self, now: float, subring: int, overhead_cycles: float
    ) -> tuple[float, float]:
        """Claim one slot requested at ``now``; returns (injected, completed).

        The single place slots are granted: every claim — first attempt
        or fault retry — draws jitter, updates the heap and counters,
        and notifies the probe, so retries are indistinguishable from
        fresh traffic to contention and observability.
        """
        heap = self._free[subring]
        # Batched jitter: one uniform(0, spacing, size=N) call consumes
        # exactly the same stream values as N single draws, so batching
        # changes no simulated timing (popped from the end in draw order).
        buf = self._jitter
        if not buf:
            self._refill_jitter()
        earliest = now + buf.pop()
        if self.fault_jitter is not None:
            earliest += self.fault_jitter()
        # earliest-free slot of this sub-ring (round-robin fairness)
        free, slot = heap[0]
        injected = earliest if earliest > free else free
        heapreplace(heap, (injected + self._hold, slot))
        completed = injected + self._circuit + overhead_cycles
        self.n_transactions += 1
        self.total_wait_cycles += injected - now
        self.total_transit_cycles += completed - injected
        if self.probe is not None:
            self.probe(self, now, injected - now, completed - injected)
        return injected, completed

    def _refill_jitter(self) -> None:
        """Refill the batched jitter buffer from this ring's RNG.

        The single refill site, shared with the macro-event layer
        (:class:`repro.ring.batch.BatchAdvancer`): whichever path
        empties the buffer draws the next 256 values identically, so
        batched and per-event runs consume the same stream.
        """
        buf = self._jitter
        buf[:] = self.rng.uniform(0.0, self._spacing, size=_JITTER_BATCH).tolist()
        buf.reverse()

    def piggyback_window(self, grant: RingGrant) -> tuple[float, float]:
        """Time window during which the response packet of ``grant``
        circulates — other cells' place-holders snarf within it."""
        return (grant.injected_at, grant.completed_at)

    @property
    def mean_wait_cycles(self) -> float:
        """Average queueing delay per transaction so far."""
        if self.n_transactions == 0:
            return 0.0
        return self.total_wait_cycles / self.n_transactions

    def utilization(self, horizon: float) -> float:
        """Fraction of slot-cycles consumed up to time ``horizon``."""
        if horizon <= 0:
            return 0.0
        busy = self.total_transit_cycles
        return min(1.0, busy / (self.config.total_slots * horizon))
