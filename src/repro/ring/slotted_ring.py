"""Cycle-level model of one slotted, pipelined, unidirectional ring.

The lowest-level KSR ring carries 24 slots organised as two
address-interleaved sub-rings of 12 slots each; a cell injects a
transaction into a passing empty slot of the sub-ring selected by the
subpage address, and because the ring is unidirectional the combined
request→responder→response path is one full circuit regardless of the
responder's position.

The model makes slot occupancy explicit:

* a transaction waits for the earliest free slot of its sub-ring (plus
  a jitter in ``[0, slot_spacing)`` representing alignment with the
  next passing slot),
* holds that slot for one full circuit,
* completes after circuit + protocol-overhead cycles.

Round-robin fairness falls out of "earliest free slot" ordering;
forward progress is guaranteed because slots are always released after
one circuit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.machine.config import RingConfig

__all__ = ["RingGrant", "SlottedRing"]


@dataclass(frozen=True)
class RingGrant:
    """Timing of one granted ring transaction."""

    #: Time the transaction was requested.
    requested_at: float
    #: Time the slot was claimed (requested_at + wait).
    injected_at: float
    #: Time the response arrived back at the requester.
    completed_at: float
    #: Which sub-ring carried it.
    subring: int

    @property
    def wait_cycles(self) -> float:
        """Queueing delay before a free slot passed by."""
        return self.injected_at - self.requested_at

    @property
    def total_cycles(self) -> float:
        """Request-to-response latency including queueing."""
        return self.completed_at - self.requested_at


class SlottedRing:
    """One ring level with explicit slot bookkeeping.

    Parameters
    ----------
    config:
        Ring geometry and timing.
    rng:
        Source of the slot-alignment jitter.  With a seeded generator
        the whole simulation is reproducible.
    """

    def __init__(self, config: RingConfig, rng: np.random.Generator):
        if config.total_slots < 1:
            raise ConfigError("ring must carry at least one slot")
        self.config = config
        self.rng = rng
        # slot_free[s][k]: earliest time slot k of sub-ring s is free
        self._slot_free = [
            [0.0] * config.slots_per_subring for _ in range(config.n_subrings)
        ]
        self.n_transactions = 0
        self.total_wait_cycles = 0.0
        self.total_transit_cycles = 0.0

    def subring_of(self, subpage_id: int) -> int:
        """Sub-ring carrying traffic for ``subpage_id`` (address
        interleaving: consecutive subpages alternate sub-rings)."""
        return subpage_id % self.config.n_subrings

    def transact(
        self,
        now: float,
        subpage_id: int,
        *,
        overhead_cycles: float | None = None,
    ) -> RingGrant:
        """Claim a slot at ``now`` and return the transaction timing.

        ``overhead_cycles`` overrides the configured per-transaction
        protocol overhead (the hierarchy passes 0 for intermediate legs
        of a multi-ring path).
        """
        cfg = self.config
        if overhead_cycles is None:
            overhead_cycles = cfg.protocol_overhead_cycles
        subring = self.subring_of(subpage_id)
        slots = self._slot_free[subring]
        jitter = float(self.rng.uniform(0.0, cfg.slot_spacing_cycles))
        earliest = now + jitter
        # earliest-free slot of this sub-ring (round-robin fairness)
        best = min(range(len(slots)), key=slots.__getitem__)
        injected = max(earliest, slots[best])
        slots[best] = injected + cfg.slot_hold_cycles
        completed = injected + cfg.circuit_cycles + overhead_cycles
        self.n_transactions += 1
        self.total_wait_cycles += injected - now
        self.total_transit_cycles += completed - injected
        return RingGrant(
            requested_at=now,
            injected_at=injected,
            completed_at=completed,
            subring=subring,
        )

    def piggyback_window(self, grant: RingGrant) -> tuple[float, float]:
        """Time window during which the response packet of ``grant``
        circulates — other cells' place-holders snarf within it."""
        return (grant.injected_at, grant.completed_at)

    @property
    def mean_wait_cycles(self) -> float:
        """Average queueing delay per transaction so far."""
        if self.n_transactions == 0:
            return 0.0
        return self.total_wait_cycles / self.n_transactions

    def utilization(self, horizon: float) -> float:
        """Fraction of slot-cycles consumed up to time ``horizon``."""
        if horizon <= 0:
            return 0.0
        busy = self.total_transit_cycles
        return min(1.0, busy / (self.config.total_slots * horizon))
