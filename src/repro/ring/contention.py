"""Closed-form ring load → latency model (phase-level tier).

The slotted ring behaves like a multi-server queue with
``S = total_slots`` servers whose service time is one circuit.  For a
parallel phase in which ``P`` processors each alternate between
``think_cycles`` of local work and one remote transaction, the offered
in-network population is

    N = P * circuit / (L_eff + think)

and the ring can hold at most ``S`` transactions.  Below saturation the
latency inflates mildly with utilization (slot-alignment queueing);
at saturation the latency is throughput-limited:

    L_eff = max(L_queue(N/S), P * circuit / S - think)

This reproduces the paper's two observations in one formula: a ~8 %
latency rise when all 32 processors stream distinct remote accesses
(Figure 2), and outright saturation for IS at 32 processors where the
serial fraction jumps (Table 2).  The model is validated against the
cycle-level slotted ring in ``tests/ring/test_contention.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.machine.config import RingConfig

__all__ = ["RingLoadModel", "effective_remote_latency"]

#: Strength of the sub-saturation queueing term.  Calibrated against
#: the cycle-level slotted ring (tests/ring/test_contention.py); the
#: ~8 % latency rise at a full 32-cell ring (section 3.1) comes mostly
#: from the throughput-limited branch.
_QUEUEING_COEFF = 0.05


@dataclass(frozen=True)
class RingLoadModel:
    """Latency model for one ring level under a steady phase load."""

    ring: RingConfig

    def offered_population(self, n_procs: int, think_cycles: float, latency: float) -> float:
        """Average number of in-flight transactions."""
        if n_procs < 0 or think_cycles < 0:
            raise ConfigError("load parameters must be non-negative")
        cycle = latency + think_cycles
        if cycle <= 0:
            return 0.0
        return n_procs * self.ring.slot_hold_cycles / cycle

    def effective_latency(self, n_procs: int, think_cycles: float = 0.0) -> float:
        """Steady-state remote latency for the phase (CPU cycles).

        ``n_procs`` processors each issue remote transactions separated
        by ``think_cycles`` of local work.
        """
        ring = self.ring
        base = ring.remote_latency_cycles
        if n_procs <= 1:
            return base
        slots = ring.total_slots
        hold = ring.slot_hold_cycles
        # Sub-saturation inflation from slot-alignment queueing.
        rho = min(1.0, self.offered_population(n_procs, think_cycles, base) / slots)
        queued = base * (1.0 + _QUEUEING_COEFF * rho * rho / max(1e-9, 1.0 - 0.5 * rho))
        # Throughput-limited equilibrium when demand exceeds the slots.
        saturated = n_procs * hold / slots - think_cycles
        return max(queued, saturated)

    def utilization(self, n_procs: int, think_cycles: float = 0.0) -> float:
        """Fraction of slot capacity consumed at steady state."""
        latency = self.effective_latency(n_procs, think_cycles)
        return min(1.0, self.offered_population(n_procs, think_cycles, latency)
                   / self.ring.total_slots)

    def is_saturated(self, n_procs: int, think_cycles: float = 0.0) -> bool:
        """Whether the phase saturates the ring (latency is
        throughput-limited rather than queue-limited)."""
        base = self.ring.remote_latency_cycles
        saturated = (
            n_procs * self.ring.slot_hold_cycles / self.ring.total_slots - think_cycles
        )
        return saturated > base * 1.05


def effective_remote_latency(
    ring: RingConfig, n_procs: int, think_cycles: float = 0.0
) -> float:
    """Convenience wrapper around :class:`RingLoadModel`."""
    return RingLoadModel(ring).effective_latency(n_procs, think_cycles)
