"""The KSR interconnect: slotted pipelined rings and their hierarchy.

``slotted_ring`` is the cycle-level model used by the discrete-event
tier: transactions claim a circulating slot on one of two
address-interleaved sub-rings and hold it for one full circuit.
``hierarchy`` composes leaf rings with a level-1 ring through ARD
routers.  ``contention`` is the closed-form load→latency model used by
the phase-level (kernel) tier; its saturation behaviour is validated
against the slotted model in the test suite.
"""

from repro.ring.slotted_ring import SlottedRing, RingGrant, TransactionOutcome
from repro.ring.ard import ArdRouter, ArdTransaction, ArdTxnState
from repro.ring.hierarchy import RingHierarchy, PathTiming
from repro.ring.contention import RingLoadModel, effective_remote_latency

__all__ = [
    "SlottedRing",
    "RingGrant",
    "TransactionOutcome",
    "ArdRouter",
    "ArdTransaction",
    "ArdTxnState",
    "RingHierarchy",
    "PathTiming",
    "RingLoadModel",
    "effective_remote_latency",
]
